"""Request-scoped tracing spans riding the :class:`EventSink` stream.

A *span* is one timed stage of a request: it has a name, a ``trace_id``
shared by every stage of the same logical request, its own ``span_id``
and an optional ``parent_id`` forming the stage tree.  Spans emit one
``span`` event each to the tracer's sink and observe their duration into
the active registry's ``span.ms{span=name}`` histogram, so a JSONL trace
and server-side latency histograms come from the same instrumentation
points.

Two APIs, both zero-cost when tracing is disabled (the default):

* the context-manager form for lexically nested stages - nesting and
  trace-id inheritance are automatic via a :class:`~contextvars.ContextVar`,
  so it works across ``await`` points::

      with trace.span("verify", trace_id=7):
          with trace.span("pairing"):      # child of verify, trace 7
              ...

* the explicit :meth:`Tracer.record` form for stages whose start and end
  are observed in different places (a queue wait measured between an
  enqueue in one task and a drain in another), with caller-chosen span
  ids so cross-task parent links stay deterministic.

The disabled path is the shared :data:`NULL_TRACER`, whose ``span()``
returns one reusable no-op context manager and whose ``record()`` is a
pass - instrumented call sites cost an attribute check and a method call,
nothing more (asserted by tests/test_spans.py).
"""

from __future__ import annotations

import itertools
import time
from contextlib import nullcontext
from contextvars import ContextVar
from typing import Optional, Tuple

from repro.obs.events import EventSink, NULL_EVENT_SINK
from repro.obs.registry import get_registry

#: (trace_id, span_id) of the innermost open span in this context, or None
_current: ContextVar[Optional[Tuple[object, str]]] = ContextVar(
    "repro_obs_current_span", default=None
)

_ids = itertools.count(1)


def next_trace_id() -> int:
    """A fresh process-unique trace id (fits the wire protocol's u64)."""
    return next(_ids)


def current_trace_id() -> Optional[object]:
    """The trace id of the innermost open span, or None outside any span."""
    current = _current.get()
    return current[0] if current is not None else None


class Tracer:
    """Emits span events to one sink and duration histograms to the
    active registry."""

    __slots__ = ("sink",)

    #: instrumented call sites gate on this before building spans
    enabled = True

    def __init__(self, sink: EventSink):
        self.sink = sink

    def span(
        self,
        name: str,
        *,
        trace_id: Optional[object] = None,
        parent_id: Optional[str] = None,
        **fields: object,
    ) -> "_Span":
        """Context manager timing the with-block as one span.

        ``trace_id``/``parent_id`` default to the enclosing open span's,
        so nested ``with`` blocks form a tree under one trace id.
        """
        return _Span(self, name, trace_id, parent_id, fields)

    def record(
        self,
        name: str,
        *,
        trace_id: Optional[object] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        start_s: float = 0.0,
        dur_s: float = 0.0,
        **fields: object,
    ) -> str:
        """Emit one already-measured span (start/duration observed by the
        caller; used for stages that cross task boundaries).  Returns the
        span id used."""
        if span_id is None:
            span_id = f"s{next(_ids)}"
        sink = self.sink
        if sink.enabled:
            sink.emit(
                "span",
                name=name,
                trace=trace_id,
                id=span_id,
                parent=parent_id,
                start_s=round(start_s, 6),
                ms=round(dur_s * 1e3, 4),
                **fields,
            )
        registry = get_registry()
        if registry.active:
            registry.histogram("span.ms", span=name).observe(dur_s * 1e3)
        return span_id


class _Span:
    """Implementation of :meth:`Tracer.span`."""

    __slots__ = (
        "_tracer",
        "name",
        "trace_id",
        "parent_id",
        "span_id",
        "fields",
        "_start",
        "_token",
    )

    def __init__(self, tracer, name, trace_id, parent_id, fields):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.fields = fields

    def __enter__(self) -> "_Span":
        enclosing = _current.get()
        if enclosing is not None:
            if self.trace_id is None:
                self.trace_id = enclosing[0]
            if self.parent_id is None:
                self.parent_id = enclosing[1]
        self.span_id = f"s{next(_ids)}"
        self._token = _current.set((self.trace_id, self.span_id))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_s = time.perf_counter() - self._start
        _current.reset(self._token)
        self._tracer.record(
            self.name,
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_s=self._start,
            dur_s=dur_s,
            **self.fields,
        )


_NULL_SPAN = nullcontext()


class NullTracer(Tracer):
    """The disabled default: one shared no-op span, record() discards."""

    __slots__ = ()

    enabled = False

    def span(self, name, **kwargs) -> nullcontext:  # type: ignore[override]
        """The shared reusable no-op context manager."""
        return _NULL_SPAN

    def record(self, name, **kwargs) -> str:  # type: ignore[override]
        """Discard the span."""
        return ""


#: the process-wide disabled tracer (the default active tracer)
NULL_TRACER = NullTracer(NULL_EVENT_SINK)

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently active tracer (the no-op NULL_TRACER by default)."""
    return _active


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` (None means NULL_TRACER); returns the previous."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


def span(name: str, **kwargs):
    """Shorthand for ``get_tracer().span(name, ...)``."""
    return _active.span(name, **kwargs)


class tracing:
    """Context manager installing a :class:`Tracer` over ``sink``.

    Yields the tracer; the previously active tracer is restored on exit::

        sink = obs.ListEventSink()
        with trace.tracing(sink) as tracer:
            with tracer.span("verify", trace_id=1):
                ...
    """

    def __init__(self, sink: EventSink):
        self.tracer = Tracer(sink)

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)
