"""Rendering of registry snapshots: aligned text and machine JSON.

A snapshot (from :meth:`~repro.obs.registry.Registry.snapshot`) is a plain
dict of JSON types, so :func:`render_json` round-trips losslessly through
``json.loads``; :func:`render_text` is the human view the CLI prints.
"""

from __future__ import annotations

import json
from typing import Dict


def render_json(snapshot: Dict[str, object], indent: int = 2) -> str:
    """The snapshot as a JSON document (round-trips via json.loads)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def parse_json(text: str) -> Dict[str, object]:
    """Inverse of :func:`render_json`."""
    return json.loads(text)


def render_text(snapshot: Dict[str, object]) -> str:
    """The snapshot as aligned human-readable text (skips empty sections)."""
    lines = []
    ops = {
        name: count
        for name, count in snapshot.get("ops", {}).items()
        if count
    }
    if ops:
        lines.append("pairing-stack ops:")
        width = max(len(name) for name in ops)
        for name, count in ops.items():
            lines.append(f"  {name:<{width}} {count:>12}")
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(key) for key in counters)
        for key, value in counters.items():
            lines.append(f"  {key:<{width}} {value:>12}")
    timers = snapshot.get("timers", {})
    if timers:
        lines.append("timers:")
        width = max(len(key) for key in timers)
        for key, stats in timers.items():
            lines.append(
                f"  {key:<{width}} {stats['count']:>8}x"
                f"  total {stats['total_s']:.6f}s"
                f"  mean {stats['mean_s']:.6f}s"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        width = max(len(key) for key in histograms)
        for key, stats in histograms.items():
            lines.append(
                f"  {key:<{width}} n={stats['count']:<8}"
                f" mean={stats['mean']:.4f}"
                f" min={stats['min']:.4f}"
                f" p95={stats['p95']:.4f}"
                f" max={stats['max']:.4f}"
            )
    if not lines:
        return "(no observations recorded)"
    return "\n".join(lines)
