"""Structured event sinks: JSONL tracing for the network simulator.

An :class:`EventSink` receives dict-shaped events (``emit("auth.reject",
t=1.25, node=3, kind="RREP")``).  The simulator, nodes and the packet
tracer all write through the sink attached to the
:class:`~repro.netsim.engine.Simulator`; the default is
:data:`NULL_EVENT_SINK`, whose ``enabled`` flag lets emit sites skip even
building the event dict::

    events = self.sim.events
    if events.enabled:
        events.emit("discovery.start", t=self.sim.now, node=self.node_id)

Event schema: every event is one JSON object with an ``event`` name field;
simulator events carry ``t`` (simulated seconds) and ``node`` where
meaningful, plus event-specific fields.  The emitted names are documented
in README.md ("Observability").
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Union


class EventSink:
    """Interface: receives structured events; ``enabled`` gates emit sites."""

    #: emit sites skip dict construction entirely when this is False
    enabled: bool = True

    def emit(self, event: str, **fields: object) -> None:
        """Record one event (name plus arbitrary JSON-ready fields)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources (idempotent)."""


class NullEventSink(EventSink):
    """The disabled default sink: drops everything, advertises disabled."""

    enabled = False

    def emit(self, event: str, **fields: object) -> None:
        """Discard the event."""


class ListEventSink(EventSink):
    """Collects events in memory (tests, notebook analysis)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def emit(self, event: str, **fields: object) -> None:
        """Append the event dict to :attr:`events`."""
        record: Dict[str, object] = {"event": event}
        record.update(fields)
        self.events.append(record)

    def of_kind(self, event: str) -> List[Dict[str, object]]:
        """The collected events with the given name."""
        return [record for record in self.events if record["event"] == event]


class JsonlEventSink(EventSink):
    """Streams events as JSON Lines to a file path or open text handle."""

    def __init__(self, target: Union[str, TextIO]):
        if isinstance(target, str):
            # Line-buffered so a killed process (e.g. SIGTERM to a traced
            # gateway) keeps every event written so far.
            self._fp: Optional[TextIO] = open(
                target, "w", encoding="utf-8", buffering=1
            )
            self._owns_fp = True
        else:
            self._fp = target
            self._owns_fp = False
        self.emitted = 0

    def emit(self, event: str, **fields: object) -> None:
        """Write the event as one JSON line."""
        if self._fp is None:
            return
        record: Dict[str, object] = {"event": event}
        record.update(fields)
        self._fp.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.emitted += 1

    def close(self) -> None:
        """Flush, and close the file if this sink opened it."""
        if self._fp is None:
            return
        self._fp.flush()
        if self._owns_fp:
            self._fp.close()
        self._fp = None

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


#: the process-wide disabled sink (default on every Simulator)
NULL_EVENT_SINK = NullEventSink()


def open_sink(path: Optional[str]) -> EventSink:
    """A JSONL sink for ``path``, or the null sink when path is None/empty."""
    if not path:
        return NULL_EVENT_SINK
    return JsonlEventSink(path)
