"""repro: reproduction of "A Certificateless Signature Scheme for Mobile
Wireless Cyber-Physical Systems" (McCLS, ICDCS 2008 Workshops).

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.pairing` - from-scratch BN-curve bilinear pairing substrate.
* :mod:`repro.core`    - the McCLS certificateless signature scheme, its
  security-game harness and batch-verification extension.
* :mod:`repro.schemes` - baseline schemes compared in the paper (AP, ZWXF,
  YHG) plus ID-based and BLS building blocks.
* :mod:`repro.pki`     - traditional-PKI baseline (ECDSA + CA/certificates).
* :mod:`repro.netsim`  - discrete-event MANET simulator with AODV,
  McCLS-authenticated AODV, black-hole and rushing attackers (the QualNet
  replacement used for the paper's Figures 1-5).
"""

__version__ = "1.0.0"

__all__ = [
    "pairing",
    "core",
    "schemes",
    "pki",
    "netsim",
]
