"""Certificateless AKA (He & Chen shape): handshake and key material.

Direct tests of :mod:`repro.core.session` — agreement, confirmation,
hostile-input rejection, partial-key validation and rekey staleness.
The service-layer wiring (SESSION / VERIFY_FAST opcodes) is covered in
tests/test_service_sessions.py.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.session import (
    KEY_BYTES,
    SESSION_ID_BYTES,
    EstablishedSession,
    SessionAuthority,
    SessionError,
    SessionInitiator,
)


@pytest.fixture()
def authority(ctx):
    return SessionAuthority(ctx, master_secret=0xC0FFEE, rng=random.Random(1))


def handshake(ctx, authority, identity="alice@manet", seed=2):
    initiator = SessionInitiator(
        ctx, authority.p_pub, identity, rng=random.Random(seed)
    )
    accept, gateway_side = authority.respond(initiator.hello())
    client_side = initiator.finish(accept)
    return client_side, gateway_side


class TestAgreement:
    def test_both_sides_derive_the_same_session(self, ctx, authority):
        client, gateway = handshake(ctx, authority)
        assert client == gateway
        assert len(client.session_id) == SESSION_ID_BYTES
        assert len(client.key) == KEY_BYTES
        assert client.client_identity == "alice@manet"
        assert client.gateway_identity == authority.identity

    def test_sessions_are_unique_per_handshake(self, ctx, authority):
        first, _ = handshake(ctx, authority, seed=3)
        second, _ = handshake(ctx, authority, seed=4)
        assert first.session_id != second.session_id
        assert first.key != second.key

    def test_macs_round_trip_and_bind_every_chunk(self, ctx, authority):
        client, gateway = handshake(ctx, authority)
        tag = client.mac(b"chunk-a", b"chunk-b")
        assert gateway.mac_ok(tag, b"chunk-a", b"chunk-b")
        assert not gateway.mac_ok(tag, b"chunk-a", b"chunk-X")
        # length framing: moving a byte across the chunk boundary must
        # change the tag
        assert not gateway.mac_ok(tag, b"chunk-ab", b"chunk-b"[1:])

    def test_mac_depends_on_the_key(self):
        a = EstablishedSession(b"i" * 16, b"k" * 32, "c", "g")
        b = EstablishedSession(b"i" * 16, b"K" * 32, "c", "g")
        assert a.mac(b"m") != b.mac(b"m")


class TestHostileInput:
    def test_infinity_in_hello_rejected(self, ctx, authority):
        initiator = SessionInitiator(
            ctx, authority.p_pub, "eve@manet", rng=random.Random(5)
        )
        hello = initiator.hello()
        bad = dataclasses.replace(hello, client_pub=ctx.g1 * 0)
        with pytest.raises(SessionError):
            authority.respond(bad)

    def test_off_curve_accept_point_rejected(self, ctx, authority):
        from repro.pairing.curve import CurvePoint

        initiator = SessionInitiator(
            ctx, authority.p_pub, "alice@manet", rng=random.Random(6)
        )
        accept, _ = authority.respond(initiator.hello())
        forged = dataclasses.replace(
            accept, ephemeral=CurvePoint(accept.ephemeral.curve, 1, 1)
        )
        with pytest.raises(SessionError):
            initiator.finish(forged)

    def test_tampered_partial_key_rejected(self, ctx, authority):
        initiator = SessionInitiator(
            ctx, authority.p_pub, "alice@manet", rng=random.Random(7)
        )
        accept, _ = authority.respond(initiator.hello())
        forged = dataclasses.replace(
            accept, client_d=(accept.client_d + 1) % ctx.order
        )
        with pytest.raises(SessionError):
            initiator.finish(forged)

    def test_tampered_confirm_tag_rejected(self, ctx, authority):
        initiator = SessionInitiator(
            ctx, authority.p_pub, "alice@manet", rng=random.Random(8)
        )
        accept, _ = authority.respond(initiator.hello())
        forged = dataclasses.replace(accept, confirm=b"\x00" * 32)
        with pytest.raises(SessionError):
            initiator.finish(forged)

    def test_substituted_gateway_key_rejected(self, ctx, authority):
        # a MITM replacing the gateway's ephemeral cannot produce a valid
        # confirmation tag: it does not know the implicit-key discrete log
        initiator = SessionInitiator(
            ctx, authority.p_pub, "alice@manet", rng=random.Random(9)
        )
        accept, _ = authority.respond(initiator.hello())
        mitm_t = ctx.g1_mul(ctx.g1, 0xBAD)
        forged = dataclasses.replace(accept, ephemeral=mitm_t)
        with pytest.raises(SessionError):
            initiator.finish(forged)


class TestRekey:
    def test_stale_p_pub_view_fails_validation(self, ctx, authority):
        # client captured P_pub, then the KGC rotated: the partial key the
        # authority now issues no longer matches the stale view
        initiator = SessionInitiator(
            ctx, authority.p_pub, "alice@manet", rng=random.Random(10)
        )
        authority.rekey(0xDEAD)
        accept, _ = authority.respond(initiator.hello())
        with pytest.raises(SessionError):
            initiator.finish(accept)

    def test_fresh_view_after_rekey_succeeds(self, ctx, authority):
        authority.rekey(0xDEAD)
        client, gateway = handshake(ctx, authority, seed=11)
        assert client == gateway
