"""Crypto timing-model tests, including consistency with the real schemes."""

import random

import pytest

from repro.netsim.crypto_model import (
    CryptoTimingModel,
    OperationCosts,
    OperationMix,
    SCHEME_MIXES,
    calibrate_from_curve,
)
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.schemes.registry import scheme_class


class TestCosts:
    def test_mix_pricing(self):
        costs = OperationCosts(
            pairing=1.0, scalar_mult=0.1, gt_exp=0.5, group_hash=0.2, field_ops=0.0
        )
        mix = OperationMix(pairings=2, scalar_mults=3, gt_exps=1, group_hashes=2)
        assert mix.cost(costs) == pytest.approx(2 + 0.3 + 0.5 + 0.4)

    def test_speedup_scaling(self):
        base = CryptoTimingModel("mccls", speedup=1.0)
        fast = CryptoTimingModel("mccls", speedup=10.0)
        assert fast.verify_delay() == pytest.approx(base.verify_delay() / 10)
        assert fast.sign_delay() == pytest.approx(base.sign_delay() / 10)

    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            CryptoTimingModel("mccls", speedup=0)

    def test_none_scheme_is_free(self):
        model = CryptoTimingModel("none")
        assert model.sign_delay() == 0.0
        assert model.verify_delay() == 0.0
        assert not model.enabled

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            CryptoTimingModel("rsa")

    def test_scheme_cost_ordering(self):
        """Table 1's verify ordering must carry into modelled delays.

        In the warm steady state McCLS and YHG both cost a single pairing
        (they are near-ties; the paper's "1p vs 2p" advantage only holds
        cold), while ZWXF and AP stay multi-pairing.
        """
        delays = {
            name: CryptoTimingModel(name).verify_delay()
            for name in ("ap", "zwxf", "yhg", "mccls")
        }
        assert delays["mccls"] < delays["zwxf"] < delays["ap"]
        assert delays["yhg"] < delays["zwxf"]
        assert abs(delays["mccls"] - delays["yhg"]) < delays["zwxf"] / 2

    def test_mccls_sign_cheapest(self):
        sign = {
            name: CryptoTimingModel(name).sign_delay()
            for name in ("ap", "zwxf", "yhg", "mccls")
        }
        assert sign["mccls"] <= min(sign.values()) + 1e-12


class TestProfileConsistency:
    """SCHEME_MIXES must track what the real implementations actually do -
    this is the contract between the crypto layer and the simulator."""

    @pytest.mark.parametrize("name", ["ap", "zwxf", "yhg", "mccls"])
    def test_sign_mix_matches_implementation(self, name):
        ctx = PairingContext(toy_curve(32), random.Random(0xFEED))
        scheme = scheme_class(name)(ctx)
        keys = scheme.generate_user_keys("profile@manet")
        scheme.sign(b"warm", keys)  # warm signer-side caches
        _, ops = scheme.measure_sign(b"steady", keys)
        mix = SCHEME_MIXES[name]["sign"]
        assert ops.pairings == mix.pairings
        assert ops.scalar_mults == mix.scalar_mults
        assert ops.group_hashes == mix.group_hashes

    @pytest.mark.parametrize("name", ["ap", "zwxf", "yhg", "mccls"])
    def test_verify_mix_matches_implementation_warm(self, name):
        ctx = PairingContext(toy_curve(32), random.Random(0xFEED))
        scheme = scheme_class(name)(ctx)
        keys = scheme.generate_user_keys("profile@manet")
        sig = scheme.sign(b"m", keys)
        scheme.verify(
            b"m", sig, keys.identity, keys.public_key, keys.public_key_extra
        )  # warm per-identity caches
        _, ops = scheme.measure_verify(b"m", sig, keys)
        mix = SCHEME_MIXES[name]["verify"]
        assert ops.pairings == mix.pairings


class TestCalibration:
    def test_calibrate_from_curve(self):
        costs = calibrate_from_curve(toy_curve(32), samples=1)
        assert costs.pairing > 0
        assert costs.scalar_mult > 0
        assert costs.pairing > costs.scalar_mult  # pairings dominate
