"""Elliptic-curve group-law tests over Fp and Fp2 coordinates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CurveError
from repro.pairing.bn import toy_curve

CURVE = toy_curve(32)
scalars = st.integers(min_value=0, max_value=2**40)


class TestGroupLawG1:
    def test_generator_on_curve(self):
        assert CURVE.g1.is_on_curve()

    def test_identity(self):
        inf = CURVE.g1_curve.infinity()
        assert CURVE.g1 + inf == CURVE.g1
        assert inf + CURVE.g1 == CURVE.g1
        assert inf + inf == inf

    def test_inverse(self):
        assert (CURVE.g1 + (-CURVE.g1)).is_infinity()

    def test_doubling_matches_addition(self):
        assert CURVE.g1.double() == CURVE.g1 + CURVE.g1

    def test_order(self):
        assert (CURVE.g1 * CURVE.n).is_infinity()
        assert not (CURVE.g1 * (CURVE.n - 1)).is_infinity()

    @given(scalars, scalars)
    @settings(max_examples=40)
    def test_scalar_distributivity(self, a, b):
        left = CURVE.g1 * (a + b)
        right = CURVE.g1 * a + CURVE.g1 * b
        assert left == right

    @given(scalars)
    @settings(max_examples=30)
    def test_negative_scalar(self, a):
        assert CURVE.g1 * (-a) == -(CURVE.g1 * a)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20)
    def test_repeated_addition(self, k):
        total = CURVE.g1_curve.infinity()
        for _ in range(k):
            total = total + CURVE.g1
        assert total == CURVE.g1 * k

    def test_commutativity(self):
        p = CURVE.g1 * 17
        q = CURVE.g1 * 91
        assert p + q == q + p

    def test_associativity(self):
        p, q, r = CURVE.g1 * 3, CURVE.g1 * 1007, CURVE.g1 * 999983
        assert (p + q) + r == p + (q + r)

    def test_zero_scalar(self):
        assert (CURVE.g1 * 0).is_infinity()


class TestGroupLawG2:
    def test_generator_on_twist(self):
        assert CURVE.g2.is_on_curve()

    def test_order(self):
        assert (CURVE.g2 * CURVE.n).is_infinity()
        assert not (CURVE.g2 * 7).is_infinity()

    @given(scalars, scalars)
    @settings(max_examples=25)
    def test_scalar_distributivity(self, a, b):
        assert CURVE.g2 * (a + b) == CURVE.g2 * a + CURVE.g2 * b

    def test_mixed_curve_addition_raises(self):
        with pytest.raises(CurveError):
            CURVE.g1 + CURVE.g2


class TestConstruction:
    def test_point_validation(self):
        spec = CURVE.spec
        with pytest.raises(CurveError):
            CURVE.g1_curve.point(spec.fp(1), spec.fp(1))

    def test_unsafe_point_skips_validation(self):
        spec = CURVE.spec
        bogus = CURVE.g1_curve.unsafe_point(spec.fp(1), spec.fp(1))
        assert not bogus.is_on_curve()

    def test_contains(self):
        assert CURVE.g1_curve.contains(CURVE.g1)
        assert CURVE.g1_curve.contains(CURVE.g1_curve.infinity())
        spec = CURVE.spec
        assert not CURVE.g1_curve.contains(
            CURVE.g1_curve.unsafe_point(spec.fp(1), spec.fp(1))
        )

    def test_equality_infinity(self):
        assert CURVE.g1_curve.infinity() == CURVE.g2_curve.infinity()
        assert CURVE.g1_curve.infinity() != CURVE.g1

    def test_repr(self):
        assert "CurvePoint" in repr(CURVE.g1)
        assert "infinity" in repr(CURVE.g1_curve.infinity())

    def test_hashable(self):
        seen = {CURVE.g1, CURVE.g1 * 2, CURVE.g1}
        assert len(seen) == 2

    def test_y_zero_tangent(self):
        # A point with y = 0 doubles to infinity (vertical tangent); there
        # is no such point on prime-order BN curves, so build the situation
        # on a synthetic curve y^2 = x^3 + 0 over the same field.
        from repro.pairing.curve import EllipticCurve

        spec = CURVE.spec
        curve = EllipticCurve(spec.fp(0), name="synthetic")
        point = curve.point(spec.fp(0), spec.fp(0))
        assert point.double().is_infinity()
