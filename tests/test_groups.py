"""PairingContext facade tests: counters, caching, measurement."""

import random

from repro.pairing.bn import toy_curve
from repro.pairing.groups import OpCount, PairingContext

CURVE = toy_curve(32)


def make_ctx():
    return PairingContext(CURVE, random.Random(7))


class TestCounters:
    def test_scalar_mults_counted(self):
        ctx = make_ctx()
        ctx.g1_mul(ctx.g1, 5)
        ctx.g2_mul(ctx.g2, 5)
        assert ctx.ops.scalar_mults == 2
        assert ctx.ops.g1_mults == 1
        assert ctx.ops.g2_mults == 1

    def test_pairings_counted(self):
        ctx = make_ctx()
        ctx.pair(ctx.g1, ctx.g2)
        assert ctx.ops.pairings == 1

    def test_gt_exp_counted(self):
        ctx = make_ctx()
        e = ctx.pair(ctx.g1, ctx.g2)
        ctx.gt_exp(e, 12)
        assert ctx.ops.gt_exps == 1

    def test_group_hash_counted(self):
        ctx = make_ctx()
        ctx.hash_g1(b"d", "x")
        ctx.hash_g2(b"d", "x")
        assert ctx.ops.group_hashes == 2

    def test_reset(self):
        ctx = make_ctx()
        ctx.g1_mul(ctx.g1, 2)
        ctx.reset_ops()
        assert ctx.ops.scalar_mults == 0


class TestPairingCache:
    def test_cache_hit_not_counted_as_pairing(self):
        ctx = make_ctx()
        first = ctx.pair_cached(ctx.g1, ctx.g2)
        second = ctx.pair_cached(ctx.g1, ctx.g2)
        assert first == second
        assert ctx.ops.pairings == 1
        assert ctx.ops.cached_pairing_hits == 1

    def test_different_keys_miss(self):
        ctx = make_ctx()
        ctx.pair_cached(ctx.g1, ctx.g2)
        ctx.pair_cached(ctx.g1 * 2, ctx.g2)
        assert ctx.ops.pairings == 2

    def test_clear_cache(self):
        ctx = make_ctx()
        ctx.pair_cached(ctx.g1, ctx.g2)
        ctx.clear_pairing_cache()
        ctx.pair_cached(ctx.g1, ctx.g2)
        assert ctx.ops.pairings == 2


class TestMeasurement:
    def test_measure_delta(self):
        ctx = make_ctx()
        ctx.g1_mul(ctx.g1, 3)  # pre-existing ops must not leak into delta
        with ctx.measure() as meter:
            ctx.g1_mul(ctx.g1, 4)
            ctx.pair(ctx.g1, ctx.g2)
        assert meter.delta.scalar_mults == 1
        assert meter.delta.pairings == 1

    def test_opcount_summary(self):
        assert OpCount().summary() == "0"
        assert OpCount(pairings=2, scalar_mults=3).summary() == "2p+3s"
        assert OpCount(gt_exps=1).summary() == "1e"

    def test_snapshot_diff(self):
        a = OpCount(pairings=5, scalar_mults=2)
        b = a.snapshot()
        b.pairings += 1
        assert b.diff(a).pairings == 1
        assert b.diff(a).scalar_mults == 0


class TestRandomness:
    def test_random_scalar_range(self):
        ctx = make_ctx()
        for _ in range(50):
            assert 1 <= ctx.random_scalar() < ctx.order

    def test_seeded_reproducibility(self):
        a = PairingContext(CURVE, random.Random(42)).random_scalar()
        b = PairingContext(CURVE, random.Random(42)).random_scalar()
        assert a == b

    def test_scalar_inverse(self):
        ctx = make_ctx()
        k = ctx.random_scalar()
        assert (k * ctx.scalar_inverse(k)) % ctx.order == 1
