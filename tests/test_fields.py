"""Field-arithmetic tests: Fp, Fp2 and Fp12 (unit + hypothesis properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.pairing.fields import FieldSpec, Fp, Fp2, Fp12

# A small prime = 3 (mod 4) keeps hypothesis runs quick; the tower rules are
# size-independent.
P = 10007
SPEC = FieldSpec(P, xi_a=1)

fp_values = st.integers(min_value=0, max_value=P - 1)


def fp(x):
    return SPEC.fp(x)


def fp2(a, b=0):
    return SPEC.fp2(a, b)


def fp12(coeffs):
    return SPEC.fp12(coeffs)


fp2_elements = st.builds(fp2, fp_values, fp_values)
fp12_elements = st.builds(
    lambda cs: fp12(cs), st.lists(fp_values, min_size=12, max_size=12)
)


class TestFieldSpec:
    def test_requires_3_mod_4(self):
        with pytest.raises(FieldError):
            FieldSpec(13, xi_a=1)  # 13 = 1 (mod 4)

    def test_reduction_constants(self):
        spec = FieldSpec(P, xi_a=3)
        assert spec.fp12_mod_c6 == 6
        assert spec.fp12_mod_c0 == (-(9 + 1)) % P

    def test_equality_and_hash(self):
        assert FieldSpec(P, xi_a=1) == FieldSpec(P, xi_a=1)
        assert FieldSpec(P, xi_a=1) != FieldSpec(P, xi_a=2)
        assert hash(FieldSpec(P, xi_a=1)) == hash(FieldSpec(P, xi_a=1))


class TestFp:
    @given(fp_values, fp_values, fp_values)
    def test_ring_axioms(self, a, b, c):
        x, y, z = fp(a), fp(b), fp(c)
        assert (x + y) + z == x + (y + z)
        assert x + y == y + x
        assert (x * y) * z == x * (y * z)
        assert x * (y + z) == x * y + x * z

    @given(fp_values.filter(lambda v: v != 0))
    def test_inverse(self, a):
        x = fp(a)
        assert x * x.inverse() == 1
        assert x / x == 1

    def test_zero_inverse_raises(self):
        with pytest.raises(FieldError):
            fp(0).inverse()

    def test_int_interop(self):
        assert fp(5) + 3 == fp(8)
        assert 3 + fp(5) == fp(8)
        assert fp(5) - 3 == fp(2)
        assert 3 - fp(5) == fp(-2)
        assert fp(5) * 2 == fp(10)
        assert 10 / fp(5) == fp(2)

    def test_pow_negative_exponent(self):
        x = fp(7)
        assert x ** -1 == x.inverse()
        assert x ** -3 == (x ** 3).inverse()

    def test_sqrt(self):
        x = fp(1234)
        root = (x * x).sqrt()
        assert root * root == x * x

    def test_mixed_spec_raises(self):
        other = FieldSpec(19, xi_a=1)
        with pytest.raises(FieldError):
            fp(1) + other.fp(1)

    def test_equality_with_int(self):
        assert fp(P + 5) == 5
        assert fp(5) != 6


class TestFp2:
    @given(fp2_elements, fp2_elements, fp2_elements)
    @settings(max_examples=60)
    def test_ring_axioms(self, x, y, z):
        assert (x + y) + z == x + (y + z)
        assert x * y == y * x
        assert (x * y) * z == x * (y * z)
        assert x * (y + z) == x * y + x * z

    @given(fp2_elements.filter(lambda e: not e.is_zero()))
    @settings(max_examples=60)
    def test_inverse(self, x):
        assert x * x.inverse() == fp2(1)

    def test_i_squared_is_minus_one(self):
        i = fp2(0, 1)
        assert i * i == fp2(P - 1)

    def test_conjugate_norm(self):
        x = fp2(3, 4)
        norm = x * x.conjugate()
        assert norm == fp2((3 * 3 + 4 * 4) % P)

    @given(fp2_elements)
    @settings(max_examples=60)
    def test_square_roots(self, x):
        square = x * x
        assert square.is_square()
        root = square.sqrt()
        assert root * root == square

    def test_non_square_detection(self):
        # Exhaustively confirmed counts: exactly (p^2-1)/2 non-squares exist;
        # find one and check both predicates agree.
        found = False
        for c0 in range(1, 50):
            candidate = fp2(c0, 1)
            if not candidate.is_square():
                with pytest.raises(FieldError):
                    candidate.sqrt()
                found = True
                break
        assert found

    def test_mul_by_xi(self):
        x = fp2(5, 9)
        assert x.mul_by_xi() == x * fp2(SPEC.xi_a, 1)

    def test_division_by_int(self):
        x = fp2(10, 6)
        assert x / 2 == fp2(5, 3)

    def test_zero_inverse_raises(self):
        with pytest.raises(FieldError):
            fp2(0, 0).inverse()


class TestFp12:
    @given(fp12_elements, fp12_elements, fp12_elements)
    @settings(max_examples=25)
    def test_ring_axioms(self, x, y, z):
        assert (x + y) + z == x + (y + z)
        assert x * y == y * x
        assert (x * y) * z == x * (y * z)
        assert x * (y + z) == x * y + x * z

    @given(fp12_elements.filter(lambda e: not e.is_zero()))
    @settings(max_examples=25)
    def test_inverse(self, x):
        assert x * x.inverse() == SPEC.fp12_one()

    def test_w6_equals_xi(self):
        w = fp12([0, 1] + [0] * 10)
        xi_embedded = fp12([SPEC.xi_a] + [0] * 11) + (
            w ** 6 - w ** 6
        )  # placeholder zero
        # w^6 = xi_a + i where i = w^6 - xi_a by construction; check the
        # reduction identity w^12 = 2*xi_a*w^6 - (xi_a^2+1).
        lhs = w ** 12
        rhs = (w ** 6) * (2 * SPEC.xi_a) - fp12(
            [(SPEC.xi_a ** 2 + 1)] + [0] * 11
        )
        assert lhs == rhs
        assert xi_embedded is not None

    def test_field_order(self):
        x = fp12(list(range(1, 13)))
        assert x ** (P ** 12 - 1) == SPEC.fp12_one()

    def test_conjugate_is_w_negation(self):
        x = fp12(list(range(12)))
        conj = x.conjugate()
        assert conj.coeffs[0] == x.coeffs[0]
        assert conj.coeffs[1] == (-x.coeffs[1]) % P

    def test_pow_zero_and_negative(self):
        x = fp12([3] + [1] * 11)
        assert x ** 0 == SPEC.fp12_one()
        assert x ** -2 == (x ** 2).inverse()

    def test_wrong_length_raises(self):
        with pytest.raises(FieldError):
            fp12([1, 2, 3])

    def test_zero_inverse_raises(self):
        with pytest.raises(FieldError):
            SPEC.fp12_zero().inverse()

    def test_int_equality(self):
        assert SPEC.fp12_one() == 1
        assert fp12([5] + [0] * 11) == 5
        assert fp12([5, 1] + [0] * 10) != 5


class TestDedicatedSquarings:
    """The fast-pairing squaring/sparse-mul kernels against the generic ops."""

    @given(fp2_elements)
    @settings(max_examples=60)
    def test_fp2_square_matches_mul(self, x):
        assert x.square() == x * x

    @given(fp_values)
    def test_fp_square_matches_mul(self, a):
        x = fp(a)
        assert x.square() == x * x

    @given(fp12_elements)
    @settings(max_examples=25)
    def test_fp12_square_matches_mul(self, x):
        assert x.square() == x * x

    @given(fp12_elements, st.integers(min_value=0, max_value=5), fp_values, fp_values)
    @settings(max_examples=25)
    def test_sparse_mul_single_term_matches_dense(self, z, power, a, b):
        coeff = fp2(a, b)
        sparse = z.mul_sparse([(power, coeff)])
        dense_factor = Fp12.from_tower_components(
            SPEC, [coeff if i == power else fp2(0) for i in range(6)]
        )
        assert sparse == z * dense_factor

    @given(fp12_elements, fp_values, fp_values, fp_values, fp_values)
    @settings(max_examples=25)
    def test_sparse_mul_line_shape_matches_dense(self, z, a0, a1, b0, b1):
        # The Miller-loop line shape: tower coefficients at w^0, w^1, w^3.
        terms = [(0, fp2(a0, a1)), (1, fp2(b0, b1)), (3, fp2(a1, b0))]
        dense_factor = Fp12.from_tower_components(
            SPEC,
            [
                terms[0][1],
                terms[1][1],
                fp2(0),
                terms[2][1],
                fp2(0),
                fp2(0),
            ],
        )
        assert z.mul_sparse(terms) == z * dense_factor

    @given(fp12_elements.filter(lambda e: not e.is_zero()))
    @settings(max_examples=15, deadline=None)
    def test_cyclotomic_square_matches_generic(self, x):
        # Project into the cyclotomic subgroup (order p^4 - p^2 + 1) with
        # the easy-part exponent, where the Granger-Scott formulas apply.
        cyclo = x ** ((P ** 6 - 1) * (P ** 2 + 1))
        assert cyclo.cyclotomic_square() == cyclo * cyclo
