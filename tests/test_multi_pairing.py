"""Scheme-level accounting for the shared-final-exponentiation paths.

The optimised pairing core routes every product-of-pairings check through
:func:`repro.pairing.pairing.multi_pairing` or the Miller-cached co-DH
check.  These tests pin the *executed* work — Miller loops and final
exponentiations measured by the field-op tally — for the cold and warm
verify paths of each scheme, which is what the paper's Table 1 claims are
actually about.
"""

import random

import pytest

from repro import obs
from repro.core.batch import McCLSBatchVerifier
from repro.core.mccls import McCLS
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.schemes.ibs import ChaCheonIBS
from repro.schemes.zwxf import ZWXFScheme


@pytest.fixture()
def fresh_ctx(curve48):
    return PairingContext(curve48, random.Random(0xA11CE))


class TestMcCLSColdWarm:
    def test_cold_verify_runs_two_millers_one_final_exp(self, fresh_ctx):
        scheme = McCLS(fresh_ctx)
        keys = scheme.generate_user_keys("node-1")
        sig = scheme.sign(b"m", keys)
        with obs.collecting() as registry:
            assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        # Cold: both Miller loops share exactly ONE final exponentiation.
        assert registry.field_ops.pairings == 2
        assert registry.field_ops.miller_loops == 2
        assert registry.field_ops.final_exps == 1

    def test_warm_verify_runs_one_miller_one_final_exp(self, fresh_ctx):
        scheme = McCLS(fresh_ctx)
        keys = scheme.generate_user_keys("node-1")
        sig = scheme.sign(b"m", keys)
        assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        with obs.collecting() as registry:
            assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        assert registry.field_ops.pairings == 1
        assert registry.field_ops.miller_loops == 1
        assert registry.field_ops.final_exps == 1

    def test_cold_verify_fills_the_miller_cache(self, fresh_ctx):
        scheme = McCLS(fresh_ctx)
        keys = scheme.generate_user_keys("node-1")
        sig = scheme.sign(b"m", keys)
        assert not fresh_ctx._miller_cache
        assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        assert len(fresh_ctx._miller_cache) == 1

    def test_pair_cached_warms_the_codh_path(self, fresh_ctx):
        scheme = McCLS(fresh_ctx)
        keys = scheme.generate_user_keys("node-1")
        sig = scheme.sign(b"m", keys)
        fresh_ctx.pair_cached(scheme.p_pub_g1, scheme.q_of(keys.identity))
        with obs.collecting() as registry:
            assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        assert registry.field_ops.pairings == 1
        assert registry.field_ops.miller_loops == 1


class TestZWXFWarm:
    def test_warm_verify_runs_three_millers_one_final_exp(self, fresh_ctx):
        scheme = ZWXFScheme(fresh_ctx)
        keys = scheme.generate_user_keys("node-2")
        sig = scheme.sign(b"m", keys)
        assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        with obs.collecting() as registry:
            assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        # The three non-constant pairings share one final exponentiation;
        # the constant e(P_pub, Q_ID) is a GT-cache hit (zero executed).
        assert registry.field_ops.miller_loops == 3
        assert registry.field_ops.final_exps == 1


class TestIBSMultiPairing:
    def test_verify_shares_one_final_exp(self, fresh_ctx):
        scheme = ChaCheonIBS(fresh_ctx)
        keys = scheme.generate_user_keys("node-3")
        sig = scheme.sign(b"m", keys)
        with obs.collecting() as registry:
            assert scheme.verify(b"m", sig, keys.identity)
        assert registry.field_ops.miller_loops == 2
        assert registry.field_ops.final_exps == 1

    def test_batch_verify_shares_one_final_exp(self, fresh_ctx):
        scheme = ChaCheonIBS(fresh_ctx)
        keys = scheme.generate_user_keys("node-3")
        items = [
            (msg, scheme.sign(msg, keys), keys.identity)
            for msg in (b"a", b"b", b"c")
        ]
        with obs.collecting() as registry:
            assert scheme.batch_verify(items)
        assert registry.field_ops.miller_loops == 2
        assert registry.field_ops.final_exps == 1


class TestBatchVerifier:
    def test_warm_batch_is_one_miller_one_final_exp(self, fresh_ctx):
        scheme = McCLS(fresh_ctx, precompute_s=True)
        keys = scheme.generate_user_keys("node-4")
        verifier = McCLSBatchVerifier(scheme)
        items = verifier.sign_batch([b"x", b"y", b"z"], keys)
        # Any prior single verify warms the shared Miller-value cache.
        assert scheme.verify(b"x", items[0][1], keys.identity, keys.public_key)
        with obs.collecting() as registry:
            assert verifier.verify_same_signer(
                items, keys.identity, keys.public_key
            )
        assert registry.field_ops.pairings == 1
        assert registry.field_ops.miller_loops == 1
        assert registry.field_ops.final_exps == 1

    def test_cold_batch_is_two_millers_one_final_exp(self, fresh_ctx):
        scheme = McCLS(fresh_ctx, precompute_s=True)
        keys = scheme.generate_user_keys("node-4")
        verifier = McCLSBatchVerifier(scheme)
        items = verifier.sign_batch([b"x", b"y"], keys)
        with obs.collecting() as registry:
            assert verifier.verify_same_signer(
                items, keys.identity, keys.public_key
            )
        assert registry.field_ops.miller_loops == 2
        assert registry.field_ops.final_exps == 1


class TestCounters:
    def test_multi_pairing_counter_increments(self, fresh_ctx):
        with obs.collecting() as registry:
            fresh_ctx.multi_pair(
                [(fresh_ctx.g1, fresh_ctx.g2), (-fresh_ctx.g1, fresh_ctx.g2)]
            )
        assert registry.counter_value("pairing.multi_pairings") == 1

    def test_sparse_and_cyclo_counters_increment(self):
        curve = toy_curve(32)
        from repro.pairing.pairing import pairing

        with obs.collecting() as registry:
            pairing(curve, curve.g1, curve.g2)
        assert registry.counter_value("pairing.sparse_mults") > 0
        assert registry.counter_value("pairing.cyclo_squares") > 0
