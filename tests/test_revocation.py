"""Revocation-module and insider-attack tests."""

import random

import pytest

from repro.core.mccls import McCLS
from repro.core.revocation import (
    REVOCATION_AUTHORITY_IDENTITY,
    RevocationAuthority,
    RevocationChecker,
    RevocationList,
    forge_revocation,
)
from repro.netsim.scenario import ScenarioConfig, run_scenario
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext

CURVE = toy_curve(32)


@pytest.fixture()
def authority():
    scheme = McCLS(PairingContext(CURVE, random.Random(0xCA)), precompute_s=True)
    return RevocationAuthority(scheme)


class TestAuthority:
    def test_issue_signed_crl(self, authority):
        crl = authority.revoke("node-3", "node-7")
        assert crl.version == 1
        assert crl.revoked == frozenset({"node-3", "node-7"})
        assert crl.signature is not None

    def test_versions_increment_and_accumulate(self, authority):
        authority.revoke("a")
        crl = authority.revoke("b")
        assert crl.version == 2
        assert crl.revoked == frozenset({"a", "b"})

    def test_authority_identity_reserved(self, authority):
        assert authority.keys.identity == REVOCATION_AUTHORITY_IDENTITY


class TestChecker:
    def test_real_crypto_roundtrip(self, authority):
        checker = RevocationChecker(
            scheme=authority.scheme, authority_public_key=authority.public_key()
        )
        crl = authority.revoke("node-3")
        assert checker.apply(crl)
        assert checker.is_revoked("node-3")
        assert not checker.is_revoked("node-4")

    def test_forged_crl_rejected(self, authority):
        checker = RevocationChecker(
            scheme=authority.scheme, authority_public_key=authority.public_key()
        )
        forged, _reason = forge_revocation(1, ["honest-victim"])
        assert not checker.apply(forged)
        assert not checker.is_revoked("honest-victim")

    def test_stale_version_ignored(self, authority):
        checker = RevocationChecker(
            scheme=authority.scheme, authority_public_key=authority.public_key()
        )
        first = authority.revoke("a")
        second = authority.revoke("b")
        assert checker.apply(second)
        assert not checker.apply(first)  # rollback attempt
        assert checker.is_revoked("b")

    def test_wrong_signer_rejected(self, authority):
        """A CRL signed by a non-authority identity must not apply."""
        scheme = authority.scheme
        impostor = scheme.generate_user_keys("impostor")
        crl = RevocationList(version=1, revoked=frozenset({"victim"}))
        bad_sig = scheme.sign(crl.payload_bytes(), impostor)
        forged = RevocationList(
            version=1, revoked=crl.revoked, signature=bad_sig
        )
        checker = RevocationChecker(
            scheme=scheme, authority_public_key=authority.public_key()
        )
        assert not checker.apply(forged)

    def test_modelled_mode_trusts_lists(self):
        checker = RevocationChecker()
        assert checker.apply(
            RevocationList(version=1, revoked=frozenset({"node-1"}))
        )
        assert checker.is_revoked("node-1")


class TestInsiderScenario:
    BASE = dict(
        max_speed=10.0,
        sim_time_s=40.0,
        seed=3,
        attack="blackhole-insider",
        protocol="mccls",
        blackhole_fake_seq_boost=100,
    )

    def test_insider_defeats_authentication(self):
        report = run_scenario(ScenarioConfig(**self.BASE)).report()
        # Valid keys => hop-by-hop auth cannot exclude the insider.
        assert report["packet_drop_ratio"] > 0.2

    def test_revocation_restores_protection(self):
        without = run_scenario(ScenarioConfig(**self.BASE)).report()
        with_revocation = run_scenario(
            ScenarioConfig(revocation_time_s=10.0, **self.BASE)
        ).report()
        assert (
            with_revocation["packet_drop_ratio"]
            < without["packet_drop_ratio"] / 2
        )
        assert (
            with_revocation["packet_delivery_ratio"]
            > without["packet_delivery_ratio"]
        )

    def test_early_revocation_near_total_protection(self):
        report = run_scenario(
            ScenarioConfig(revocation_time_s=4.0, **self.BASE)
        ).report()
        assert report["packet_drop_ratio"] < 0.05

    def test_outsider_attack_unaffected_by_revocation_option(self):
        base = {**self.BASE, "attack": "blackhole"}
        report = run_scenario(
            ScenarioConfig(revocation_time_s=10.0, **base)
        ).report()
        assert report["packet_drop_ratio"] == 0.0
