"""Tests for the unified instrumentation layer (repro.obs)."""

import io
import json

import pytest

from repro import obs
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.pairing.pairing import pairing


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = obs.Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_registry_returns_same_instrument_per_key(self):
        registry = obs.Registry()
        registry.counter("hits").inc()
        registry.counter("hits").inc()
        assert registry.counter_value("hits") == 2

    def test_labels_distinguish_instruments(self):
        registry = obs.Registry()
        registry.counter("verify", scheme="mccls").inc(3)
        registry.counter("verify", scheme="ap").inc(1)
        assert registry.counter_value("verify", scheme="mccls") == 3
        assert registry.counter_value("verify", scheme="ap") == 1
        assert registry.counter_value("verify") == 0  # unlabelled is distinct
        assert registry.counter_total("verify") == 4

    def test_label_order_is_irrelevant(self):
        registry = obs.Registry()
        registry.counter("x", a=1, b=2).inc()
        assert registry.counter_value("x", b=2, a=1) == 1


class TestTimer:
    def test_observe_accumulates(self):
        timer = obs.Timer()
        timer.observe(0.5)
        timer.observe(1.5)
        assert timer.count == 2
        assert timer.total_s == pytest.approx(2.0)
        assert timer.mean_s == pytest.approx(1.0)

    def test_time_context_manager_records_positive_span(self):
        registry = obs.Registry()
        with registry.timer("work").time():
            sum(range(1000))
        timer = registry.timer("work")
        assert timer.count == 1
        assert timer.total_s > 0.0

    def test_empty_timer_mean_is_zero(self):
        assert obs.Timer().mean_s == 0.0


class TestHistogram:
    def test_summary_statistics(self):
        histogram = obs.Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] in (2.0, 3.0)

    def test_reservoir_bounds_memory_but_counts_everything(self):
        histogram = obs.Histogram(max_samples=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert len(histogram._samples) == 10
        assert histogram.max == 99.0

    def test_empty_histogram_summary(self):
        summary = obs.Histogram().summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0

    def test_percentile_and_quantile_ladder(self):
        histogram = obs.Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(99) == pytest.approx(99.0, abs=1.0)
        quantiles = histogram.quantiles()
        assert set(quantiles) == {"p50", "p90", "p95", "p99"}
        assert quantiles["p50"] <= quantiles["p90"] <= quantiles["p99"]
        summary = histogram.summary()
        for key, value in quantiles.items():
            assert summary[key] == value

    def test_empty_percentile_is_zero(self):
        assert obs.Histogram().percentile(50) == 0.0

    def test_absorb_merges_counts_bounds_and_samples(self):
        a, b = obs.Histogram(), obs.Histogram()
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
        for value in (10.0, 20.0):
            b.observe(value)
        a.absorb(b.state())
        assert a.count == 5
        assert a.min == 1.0
        assert a.max == 20.0
        assert a.summary()["sum"] == pytest.approx(36.0)
        # merged percentiles see the worker's samples, not just its bounds
        assert a.percentile(99) == pytest.approx(20.0)

    def test_absorb_respects_reservoir_cap(self):
        a = obs.Histogram(max_samples=4)
        b = obs.Histogram()
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
        for value in (4.0, 5.0, 6.0):
            b.observe(value)
        a.absorb(b.state())
        assert a.count == 6
        assert len(a._samples) == 4  # capped, not extended unboundedly
        assert a.max == 6.0  # exact bounds survive the cap


class TestNoOpDefault:
    def test_default_registry_is_inactive(self):
        registry = obs.get_registry()
        assert registry is obs.NULL_REGISTRY
        assert not registry.active

    def test_null_instruments_discard_everything(self):
        registry = obs.NULL_REGISTRY
        registry.counter("x").inc(100)
        registry.timer("t").observe(1.0)
        registry.histogram("h").observe(1.0)
        with registry.phase("p"):
            pass
        assert registry.counter_value("x") == 0
        assert registry.counter_total("x") == 0
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert all(count == 0 for count in snapshot["ops"].values())

    def test_hot_path_tally_is_none_by_default(self):
        from repro.obs import runtime

        assert runtime.tally is None

    def test_collecting_restores_previous_registry(self):
        assert obs.get_registry() is obs.NULL_REGISTRY
        with obs.collecting() as registry:
            assert obs.get_registry() is registry
            assert registry.active
            from repro.obs import runtime

            assert runtime.tally is registry.field_ops
        assert obs.get_registry() is obs.NULL_REGISTRY
        from repro.obs import runtime

        assert runtime.tally is None


class TestPhases:
    def test_phase_attributes_field_ops(self, toy_ctx):
        scheme, keys = toy_ctx
        with obs.collecting() as registry:
            with registry.phase("sign"):
                sig = scheme.sign(b"msg", keys)
        assert registry.counter_value("ops.point_mul", phase="sign") > 0
        assert registry.counter_value("ops.pairings", phase="sign") == 0
        timer = registry.timer("phase", phase="sign")
        assert timer.count == 1 and timer.total_s > 0
        assert sig is not None

    def test_nested_phases_each_get_full_span(self, toy_ctx):
        scheme, keys = toy_ctx
        sig = scheme.sign(b"msg", keys)
        with obs.collecting() as registry:
            with registry.phase("outer"):
                assert scheme.verify(
                    b"msg", sig, keys.identity, keys.public_key
                )
        outer = registry.counter_value("ops.pairings", phase="outer")
        miller = registry.counter_value(
            "ops.miller_loops", phase="pairing.miller_loop"
        )
        assert outer >= 1
        assert miller >= 1  # inner pairing phases recorded too

    def test_module_level_phase_shorthand(self):
        with obs.collecting() as registry:
            with obs.phase("noop"):
                pass
        assert registry.timer("phase", phase="noop").count == 1


class TestPairingInvariants:
    """The headline op-count claims, measured on the real pairing stack."""

    def test_mccls_sign_executes_zero_pairings(self, toy_ctx):
        scheme, keys = toy_ctx
        with obs.collecting() as registry:
            scheme.sign(b"invariant", keys)
        assert registry.field_ops.pairings == 0

    def test_mccls_warm_verify_executes_exactly_one_pairing(self, toy_ctx):
        scheme, keys = toy_ctx
        sig = scheme.sign(b"invariant", keys)
        # Warm the per-identity caches (constant pairing e(P_pub, Q_ID)).
        assert scheme.verify(b"invariant", sig, keys.identity, keys.public_key)
        with obs.collecting() as registry:
            assert scheme.verify(
                b"invariant", sig, keys.identity, keys.public_key
            )
        assert registry.field_ops.pairings == 1
        assert registry.field_ops.miller_loops == 1
        assert registry.field_ops.final_exps == 1

    def test_raw_pairing_counts_miller_and_final_exp(self):
        curve = toy_curve(32)
        with obs.collecting() as registry:
            pairing(curve, curve.g1, curve.g2)
        assert registry.field_ops.pairings == 1
        assert registry.field_ops.fp2_mul > 0
        assert registry.counter_value(
            "ops.miller_loops", phase="pairing.miller_loop"
        ) == 1
        assert registry.counter_value(
            "ops.final_exps", phase="pairing.final_exp"
        ) == 1


class TestSnapshotAndReport:
    def test_snapshot_round_trips_through_json(self):
        with obs.collecting() as registry:
            registry.counter("events", kind="drop").inc(7)
            registry.timer("span").observe(0.25)
            registry.histogram("depth").observe(3.0)
        snapshot = registry.snapshot()
        restored = obs.parse_json(obs.render_json(snapshot))
        assert restored == json.loads(json.dumps(snapshot))
        assert restored["counters"]["events{kind=drop}"] == 7
        assert restored["timers"]["span"]["count"] == 1
        assert restored["histograms"]["depth"]["count"] == 1

    def test_render_text_sections(self):
        with obs.collecting() as registry:
            registry.counter("hits").inc(2)
            registry.timer("span").observe(0.5)
            registry.histogram("depth").observe(1.0)
        text = obs.render_text(registry.snapshot())
        assert "counters:" in text
        assert "hits" in text
        assert "timers:" in text
        assert "histograms:" in text

    def test_render_text_empty(self):
        assert (
            obs.render_text(obs.NULL_REGISTRY.snapshot())
            == "(no observations recorded)"
        )

    def test_merge_snapshot_merges_histogram_state(self):
        # The campaign path: workers snapshot, the parent merges.
        with obs.collecting() as worker_a:
            for value in (1.0, 2.0, 3.0):
                worker_a.histogram("lat", stage="verify").observe(value)
        with obs.collecting() as worker_b:
            for value in (10.0, 20.0):
                worker_b.histogram("lat", stage="verify").observe(value)
        with obs.collecting() as parent:
            pass
        parent.merge_snapshot(worker_a.snapshot())
        parent.merge_snapshot(worker_b.snapshot())
        merged = parent.histogram("lat", stage="verify")
        assert merged.count == 5
        assert merged.min == 1.0
        assert merged.max == 20.0
        # percentiles reflect both workers' observations (the old merge
        # dropped the samples, leaving merged quantiles empty)
        assert merged.percentile(99) == pytest.approx(20.0)
        assert merged.summary()["sum"] == pytest.approx(36.0)


class TestEventSinks:
    def test_null_sink_is_disabled(self):
        assert not obs.NULL_EVENT_SINK.enabled
        obs.NULL_EVENT_SINK.emit("anything", x=1)  # no-op, no error
        obs.NULL_EVENT_SINK.close()

    def test_list_sink_collects_and_filters(self):
        sink = obs.ListEventSink()
        sink.emit("a", t=1.0)
        sink.emit("b", t=2.0)
        sink.emit("a", t=3.0)
        assert len(sink.events) == 3
        assert [event["t"] for event in sink.of_kind("a")] == [1.0, 3.0]

    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.JsonlEventSink(str(path)) as sink:
            sink.emit("auth.reject", t=1.25, node=3, kind="RREP")
            sink.emit("sim.sample", t=2.0, pending_events=5)
        assert sink.emitted == 2
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "event": "auth.reject",
            "t": 1.25,
            "node": 3,
            "kind": "RREP",
        }
        assert records[1]["event"] == "sim.sample"

    def test_jsonl_sink_accepts_open_handle(self):
        buffer = io.StringIO()
        sink = obs.JsonlEventSink(buffer)
        sink.emit("x", value=1)
        sink.close()  # must not close a handle it does not own
        assert json.loads(buffer.getvalue()) == {"event": "x", "value": 1}

    def test_emit_after_close_is_ignored(self, tmp_path):
        sink = obs.JsonlEventSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.emit("late", t=1.0)  # silently dropped
        assert sink.emitted == 0

    def test_open_sink_helper(self, tmp_path):
        assert obs.open_sink(None) is obs.NULL_EVENT_SINK
        assert obs.open_sink("") is obs.NULL_EVENT_SINK
        sink = obs.open_sink(str(tmp_path / "s.jsonl"))
        assert sink.enabled
        sink.close()


class TestSimulatorEventStream:
    """End-to-end: scenario runs feed the sink and the registry."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        from repro.netsim.scenario import ScenarioConfig, run_scenario

        sink = obs.ListEventSink()
        config = ScenarioConfig(
            protocol="mccls",
            attack="blackhole",
            sim_time_s=10.0,
            max_speed=5.0,
            seed=3,
        )
        with obs.collecting() as registry:
            result = run_scenario(config, event_sink=sink)
        return sink, registry, result

    def test_discovery_lifecycle_events(self, traced_run):
        sink, _, _ = traced_run
        starts = sink.of_kind("discovery.start")
        completes = sink.of_kind("discovery.complete")
        assert starts
        assert completes
        assert all("destination" in event for event in starts)
        assert all(event["hop_count"] >= 1 for event in completes)
        assert all("t" in event and "node" in event for event in starts)

    def test_auth_and_attack_events(self, traced_run):
        sink, _, result = traced_run
        accepts = sink.of_kind("auth.accept")
        rejects = sink.of_kind("auth.reject")
        fakes = sink.of_kind("attack.fake_rrep")
        assert accepts  # honest signatures verified
        # every fake RREP the black hole sent was rejected somewhere
        if fakes:
            assert rejects
            assert all(
                event["node"] in result.attacker_ids for event in fakes
            )

    def test_queue_depth_samples(self, traced_run):
        sink, registry, _ = traced_run
        samples = sink.of_kind("sim.sample")
        assert len(samples) >= 9  # one per simulated second
        assert all("pending_events" in event for event in samples)
        histogram = registry.histogram("netsim.pending_events")
        assert histogram.count == len(samples)
        assert registry.histogram("netsim.buffered_packets").count >= 1

    def test_modelled_crypto_counted(self, traced_run):
        _, registry, _ = traced_run
        assert registry.counter_total("crypto.modelled_pairings") > 0
        assert registry.counter_total("crypto.modelled_scalar_mults") > 0
        assert registry.counter_value("crypto.verify", scheme="mccls") > 0

    def test_untraced_run_pays_nothing(self):
        from repro.netsim.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig(sim_time_s=6.0, seed=3)
        result = run_scenario(config)  # no sink, no registry
        assert result.events_executed > 0
        assert obs.get_registry() is obs.NULL_REGISTRY


@pytest.fixture
def toy_ctx():
    """A McCLS scheme + user keys on the 32-bit toy curve."""
    import random

    from repro.core.mccls import McCLS

    ctx = PairingContext(toy_curve(32), random.Random(7))
    scheme = McCLS(ctx)
    keys = scheme.generate_user_keys("obs@test")
    return scheme, keys
