"""Detailed tests of the RAP-style reverse-path randomisation (ablation
defence) in McCLS-AODV - the secondary rushing countermeasure."""

from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.secure_aodv import (
    CANDIDATE_POOL_LIFETIME,
    CryptoMaterial,
    McCLSAODVNode,
)


def diamond_net(rushing_defense=True, seed=4):
    """0 -> {1, 2} -> 3: two equal-length branches."""
    positions = {
        0: (0.0, 0.0),
        1: (100.0, 50.0),
        2: (100.0, -50.0),
        3: (200.0, 0.0),
    }
    sim = Simulator(seed=seed)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.002)
    nodes = {
        i: McCLSAODVNode(
            i,
            sim,
            radio,
            StaticPosition(p),
            metrics,
            material=CryptoMaterial(226),
            rushing_defense=rushing_defense,
        )
        for i, p in positions.items()
    }
    return sim, metrics, nodes


class TestCandidateCollection:
    def test_duplicates_recorded_not_dropped(self):
        sim, metrics, nodes = diamond_net()
        nodes[0].send_data(DataPacket(0, 0, 0, 3, 64, sim.now))
        sim.run(until=2.0)
        assert metrics.data_received == 1
        pools = nodes[3]._candidates
        senders = set()
        for pool in pools.values():
            senders.update(pool)
        assert {1, 2} <= senders

    def test_hop_counts_tracked_per_candidate(self):
        sim, metrics, nodes = diamond_net()
        nodes[0].send_data(DataPacket(0, 0, 0, 3, 64, sim.now))
        sim.run(until=2.0)
        for pool in nodes[3]._candidates.values():
            for sender, hop in pool.items():
                assert hop >= 0

    def test_defense_off_keeps_plain_behaviour(self):
        sim, metrics, nodes = diamond_net(rushing_defense=False)
        nodes[0].send_data(DataPacket(0, 0, 0, 3, 64, sim.now))
        sim.run(until=2.0)
        assert metrics.data_received == 1
        assert not nodes[3]._candidates  # no pools collected

    def test_reverse_hop_choice_is_eligible(self):
        """The randomized reverse hop is always strictly closer to the
        originator than this node's own flood hop count."""
        sim, metrics, nodes = diamond_net()
        choices = []
        original = McCLSAODVNode._reverse_next_hop

        def spy(self, rrep):
            result = original(self, rrep)
            if result is not None:
                choices.append((self.node_id, result))
            return result

        McCLSAODVNode._reverse_next_hop = spy
        try:
            nodes[0].send_data(DataPacket(0, 0, 0, 3, 64, sim.now))
            sim.run(until=2.0)
        finally:
            McCLSAODVNode._reverse_next_hop = original
        assert choices  # the RREP did travel through the hook
        # From node 3's perspective, reverse candidates are 1 or 2.
        for chooser, choice in choices:
            if chooser == 3:
                assert choice in (1, 2)

    def test_pool_pruning(self):
        sim, metrics, nodes = diamond_net()
        node = nodes[3]
        for i in range(600):
            key = (50 + i, i)
            node._candidates[key] = {1: 1}
            node._candidate_expiry[key] = -1.0  # long expired
        node._prune_candidates()
        assert len(node._candidates) == 0
        assert CANDIDATE_POOL_LIFETIME > 0

    def test_delayed_destination_reply(self):
        """With the defence on, the destination's RREP is deferred by the
        collection window (it still arrives and completes discovery)."""
        sim, metrics, nodes = diamond_net()
        nodes[0].send_data(DataPacket(0, 0, 0, 3, 64, sim.now))
        sim.run(until=2.0)
        assert metrics.rrep_sent >= 1
        assert metrics.data_received == 1


class TestDefenseInteroperability:
    def test_mixed_defense_modes_interoperate(self):
        """A network where only some nodes run the defence still routes."""
        positions = {
            0: (0.0, 0.0),
            1: (100.0, 0.0),
            2: (200.0, 0.0),
        }
        sim = Simulator(seed=4)
        metrics = MetricsCollector()
        radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.002)
        nodes = {}
        for i, p in positions.items():
            nodes[i] = McCLSAODVNode(
                i,
                sim,
                radio,
                StaticPosition(p),
                metrics,
                material=CryptoMaterial(226),
                rushing_defense=(i % 2 == 0),  # alternating
            )
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, sim.now))
        sim.run(until=3.0)
        assert metrics.data_received == 1
