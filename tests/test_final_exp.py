"""Frobenius endomorphism and optimised final-exponentiation tests."""

import pytest

from repro.pairing.bn import bn254, toy_curve
from repro.pairing.fields import Fp12, FieldSpec
from repro.pairing.pairing import (
    cyclotomic_exp,
    final_exponentiation,
    fp12_frobenius,
    miller_loop,
    pairing,
)

CURVE = toy_curve(32)


def sample_fp12():
    return miller_loop(CURVE, CURVE.g1, CURVE.g2)


class TestTowerComponents:
    def test_roundtrip(self):
        value = sample_fp12()
        components = value.tower_components()
        assert len(components) == 6
        rebuilt = Fp12.from_tower_components(CURVE.spec, components)
        assert rebuilt == value

    def test_wrong_length(self):
        from repro.errors import FieldError

        with pytest.raises(FieldError):
            Fp12.from_tower_components(CURVE.spec, [CURVE.spec.fp2(1)] * 5)

    def test_component_zero(self):
        zero = CURVE.spec.fp12_zero()
        assert all(z.is_zero() for z in zero.tower_components())

    def test_component_of_one(self):
        one = CURVE.spec.fp12_one()
        comps = one.tower_components()
        assert comps[0] == CURVE.spec.fp2(1)
        assert all(c.is_zero() for c in comps[1:])


class TestFrobenius:
    def test_matches_p_power(self):
        value = sample_fp12()
        assert fp12_frobenius(CURVE, value, 1) == value ** CURVE.p

    @pytest.mark.parametrize("power", [2, 3, 4, 5, 6, 7, 11])
    def test_matches_higher_powers(self, power):
        value = sample_fp12()
        assert fp12_frobenius(CURVE, value, power) == value ** (CURVE.p ** power)

    def test_twelfth_power_is_identity(self):
        value = sample_fp12()
        assert fp12_frobenius(CURVE, value, 12) == value

    def test_power_six_is_conjugation(self):
        # p^6 acts as w -> -w on the tower, so the sixth Frobenius power is
        # exactly the cheap coefficient conjugation.
        value = sample_fp12()
        assert fp12_frobenius(CURVE, value, 6) == value.conjugate()

    def test_is_ring_homomorphism(self):
        a = sample_fp12()
        b = a * a + a
        assert fp12_frobenius(CURVE, a * b) == fp12_frobenius(
            CURVE, a
        ) * fp12_frobenius(CURVE, b)
        assert fp12_frobenius(CURVE, a + b) == fp12_frobenius(
            CURVE, a
        ) + fp12_frobenius(CURVE, b)

    def test_fixes_base_field(self):
        scalar = Fp12(CURVE.spec, [12345] + [0] * 11)
        assert fp12_frobenius(CURVE, scalar) == scalar


class TestFinalExponentiation:
    def test_matches_naive(self):
        raw = sample_fp12()
        assert final_exponentiation(CURVE, raw) == raw ** CURVE.final_exp_power

    def test_lands_in_order_n_subgroup(self):
        value = final_exponentiation(CURVE, sample_fp12())
        assert (value ** CURVE.n).is_one()
        assert not value.is_one()

    def test_other_curve_sizes(self):
        for bits in (48,):
            curve = toy_curve(bits)
            raw = miller_loop(curve, curve.g1, curve.g2)
            assert final_exponentiation(curve, raw) == raw ** curve.final_exp_power

    def test_hard_part_exponent_is_cached_on_curve(self):
        p, n = CURVE.p, CURVE.n
        assert CURVE.final_exp_hard == (p ** 4 - p ** 2 + 1) // n
        assert CURVE.final_exp_power == (
            (p ** 6 - 1) * (p ** 2 + 1) * CURVE.final_exp_hard
        )

    @pytest.mark.slow
    def test_bn254_matches_naive(self):
        curve = bn254()
        raw = miller_loop(curve, curve.g1, curve.g2)
        assert final_exponentiation(curve, raw) == raw ** curve.final_exp_power

    @pytest.mark.slow
    def test_bn254_pairing_speed_sanity(self):
        import time

        curve = bn254()
        start = time.perf_counter()
        pairing(curve, curve.g1, curve.g2)
        # Frobenius-optimised final exp keeps pure-Python BN254 well under
        # a second on any modern machine.
        assert time.perf_counter() - start < 2.0


class TestCyclotomicExp:
    """NAF cyclotomic exponentiation against the generic power operator."""

    def gt_element(self):
        return final_exponentiation(CURVE, sample_fp12())

    @pytest.mark.parametrize("exponent", [0, 1, 2, 5, 31337, -1, -17])
    def test_matches_generic_pow(self, exponent):
        value = self.gt_element()
        assert cyclotomic_exp(value, exponent) == value ** exponent

    def test_order_n_exponent_is_identity(self):
        value = self.gt_element()
        assert cyclotomic_exp(value, CURVE.n).is_one()

    def test_conjugate_is_inverse_in_gt(self):
        # On the cyclotomic subgroup (unitary elements) conjugation IS
        # inversion — the identity the negative-digit NAF steps rely on.
        value = self.gt_element()
        assert value.conjugate() == value.inverse()
