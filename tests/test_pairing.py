"""Pairing tests: bilinearity, non-degeneracy, Frobenius, engine counting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CurveError
from repro.pairing.bn import bn254, toy_curve
from repro.pairing.naive import (
    final_exponentiation_naive,
    miller_loop_naive,
    pairing_naive,
)
from repro.pairing.pairing import (
    PairingEngine,
    final_exponentiation,
    is_valid_codh_tuple,
    miller_loop,
    multi_pairing,
    pairing,
    twist_frobenius,
)

CURVE = toy_curve(32)
E = pairing(CURVE, CURVE.g1, CURVE.g2)

scalars = st.integers(min_value=1, max_value=CURVE.n - 1)


class TestBilinearity:
    def test_non_degenerate(self):
        assert not E.is_one()

    def test_order_n(self):
        assert (E ** CURVE.n).is_one()

    @given(scalars, scalars)
    @settings(max_examples=15, deadline=None)
    def test_bilinear(self, a, b):
        lhs = pairing(CURVE, CURVE.g1 * a, CURVE.g2 * b)
        assert lhs == E ** ((a * b) % CURVE.n)

    def test_left_right_symmetry(self):
        a = 987654321 % CURVE.n
        assert pairing(CURVE, CURVE.g1 * a, CURVE.g2) == pairing(
            CURVE, CURVE.g1, CURVE.g2 * a
        )

    def test_additivity_left(self):
        p1, p2 = CURVE.g1 * 11, CURVE.g1 * 222
        lhs = pairing(CURVE, p1 + p2, CURVE.g2)
        assert lhs == pairing(CURVE, p1, CURVE.g2) * pairing(CURVE, p2, CURVE.g2)

    def test_additivity_right(self):
        q1, q2 = CURVE.g2 * 13, CURVE.g2 * 444
        lhs = pairing(CURVE, CURVE.g1, q1 + q2)
        assert lhs == pairing(CURVE, CURVE.g1, q1) * pairing(CURVE, CURVE.g1, q2)

    def test_negation(self):
        assert pairing(CURVE, -CURVE.g1, CURVE.g2) == E.inverse()

    def test_infinity_arguments(self):
        inf1 = CURVE.g1_curve.infinity()
        inf2 = CURVE.g2_curve.infinity()
        assert pairing(CURVE, inf1, CURVE.g2).is_one()
        assert pairing(CURVE, CURVE.g1, inf2).is_one()

    def test_membership_check(self):
        with pytest.raises(CurveError):
            pairing(CURVE, CURVE.g2, CURVE.g2, check_membership=True)

    def test_miller_loop_needs_final_exponentiation(self):
        raw = miller_loop(CURVE, CURVE.g1, CURVE.g2)
        assert final_exponentiation(CURVE, raw) == E


class TestFrobenius:
    def test_eigenvalue_is_p(self):
        pi = twist_frobenius(CURVE, CURVE.g2)
        assert pi == CURVE.g2 * (CURVE.p % CURVE.n)

    def test_twelfth_power_is_identity(self):
        point = CURVE.g2 * 7
        current = point
        for _ in range(12):
            current = twist_frobenius(CURVE, current)
        assert current == point

    def test_infinity(self):
        inf = CURVE.g2_curve.infinity()
        assert twist_frobenius(CURVE, inf).is_infinity()


class TestCoDHTuple:
    def test_valid_tuple(self):
        s = 31337 % CURVE.n
        base = CURVE.g1
        target = CURVE.g2 * 99
        # e(s*base, target/s') with matching exponents
        c = 4242
        left = base * (s * c % CURVE.n)
        right = CURVE.g2 * (99 * pow(c, -1, CURVE.n) % CURVE.n)
        assert is_valid_codh_tuple(CURVE, base * s, left, right, target)

    def test_invalid_tuple(self):
        assert not is_valid_codh_tuple(
            CURVE, CURVE.g1, CURVE.g1 * 2, CURVE.g2 * 3, CURVE.g2 * 7
        )


class TestNaiveAgreement:
    """The optimised pipeline is value-identical to the affine reference."""

    def test_pairing_matches_naive_on_generators(self):
        assert pairing(CURVE, CURVE.g1, CURVE.g2) == pairing_naive(
            CURVE, CURVE.g1, CURVE.g2
        )

    @given(scalars, scalars)
    @settings(max_examples=10, deadline=None)
    def test_pairing_matches_naive_randomized(self, a, b):
        p_point, q_point = CURVE.g1 * a, CURVE.g2 * b
        assert pairing(CURVE, p_point, q_point) == pairing_naive(
            CURVE, p_point, q_point
        )

    @given(scalars)
    @settings(max_examples=10, deadline=None)
    def test_final_exponentiation_matches_naive(self, a):
        raw = miller_loop(CURVE, CURVE.g1 * a, CURVE.g2)
        assert final_exponentiation(CURVE, raw) == final_exponentiation_naive(
            CURVE, raw
        )

    def test_projective_and_affine_miller_agree_after_final_exp(self):
        # Raw Miller values differ by the projective line scalings, which
        # live in subfields and are erased by the easy part of the final
        # exponentiation — so only the exponentiated values are comparable.
        p_point, q_point = CURVE.g1 * 17, CURVE.g2 * 29
        fast = final_exponentiation(CURVE, miller_loop(CURVE, p_point, q_point))
        slow = final_exponentiation(
            CURVE, miller_loop_naive(CURVE, p_point, q_point)
        )
        assert fast == slow

    def test_second_toy_curve(self):
        curve = toy_curve(48)
        assert pairing(curve, curve.g1, curve.g2) == pairing_naive(
            curve, curve.g1, curve.g2
        )


class TestMultiPairing:
    """prod e(P_i, Q_i) under one shared final exponentiation."""

    def test_empty_product_is_one(self):
        assert multi_pairing(CURVE, []).is_one()

    def test_single_pair_matches_pairing(self):
        assert multi_pairing(CURVE, [(CURVE.g1, CURVE.g2)]) == E

    @given(scalars, scalars, scalars)
    @settings(max_examples=10, deadline=None)
    def test_matches_product_of_pairings(self, a, b, c):
        pairs = [
            (CURVE.g1 * a, CURVE.g2),
            (CURVE.g1 * b, CURVE.g2 * c),
            (-CURVE.g1, CURVE.g2 * a),
        ]
        product = CURVE.spec.fp12_one()
        for p_point, q_point in pairs:
            product = product * pairing(CURVE, p_point, q_point)
        assert multi_pairing(CURVE, pairs) == product

    def test_inverse_pair_cancels(self):
        pairs = [(CURVE.g1 * 5, CURVE.g2 * 7), (-(CURVE.g1 * 5), CURVE.g2 * 7)]
        assert multi_pairing(CURVE, pairs).is_one()

    def test_infinity_pairs_are_neutral(self):
        pairs = [
            (CURVE.g1_curve.infinity(), CURVE.g2),
            (CURVE.g1, CURVE.g2),
        ]
        assert multi_pairing(CURVE, pairs) == E

    def test_membership_check(self):
        with pytest.raises(CurveError):
            multi_pairing(
                CURVE, [(CURVE.g2, CURVE.g2)], check_membership=True
            )

    def test_engine_multi_pair_counts_requested_pairings(self):
        engine = PairingEngine(CURVE)
        value = engine.multi_pair([(CURVE.g1, CURVE.g2), (-CURVE.g1, CURVE.g2)])
        assert value.is_one()
        assert engine.pairing_count == 2


class TestEngine:
    def test_counts(self):
        engine = PairingEngine(CURVE)
        engine.pair(CURVE.g1, CURVE.g2)
        engine.pair(CURVE.g1, CURVE.g2)
        assert engine.pairing_count == 2
        engine.reset_counters()
        assert engine.pairing_count == 0

    def test_codh_with_engine(self):
        engine = PairingEngine(CURVE)
        is_valid_codh_tuple(
            CURVE, CURVE.g1, CURVE.g1, CURVE.g2, CURVE.g2, engine=engine
        )
        assert engine.pairing_count == 2


@pytest.mark.slow
class TestBN254Pairing:
    def test_bilinearity_once(self):
        curve = bn254()
        e = pairing(curve, curve.g1, curve.g2)
        assert not e.is_one()
        a = 1234567
        assert pairing(curve, curve.g1 * a, curve.g2) == e ** a
