"""Pluggable field-backend tests: registry, precedence, shims, identity.

The contract under test is the PR's headline guarantee: a backend may
only change *how fast* field arithmetic runs, never *what it computes*
or *what the op counters report*.  Every registered-and-available
backend is therefore driven through the same Fp/Fp2/Fp12 operations,
full pairings, and McCLS sign/verify as the pure-Python reference
backend, and the results must match bit for bit.  Backends that cannot
run here (gmpy2 without the library installed) skip with their own
availability reason instead of silently passing.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro import compat, obs
from repro.core.mccls import McCLS
from repro.core.params import KeyGenerationCenter
from repro.pairing import backends
from repro.pairing.bn import toy_curve
from repro.pairing.fields import FieldSpec
from repro.pairing.groups import PairingContext
from repro.pairing.pairing import pairing
from repro.schemes.registry import create_scheme

P254 = (1 << 253) + 39  # a 254-bit prime with p = 3 (mod 4)


def _available_backends():
    names = []
    for name in backends.backend_names():
        ok, _ = backends.get_backend(name).availability()
        if ok:
            names.append(name)
    return names


def _backend_params():
    params = []
    for name in backends.backend_names():
        ok, reason = backends.get_backend(name).availability()
        marks = (
            [pytest.mark.skip(reason=f"backend {name!r} unavailable: {reason}")]
            if not ok
            else []
        )
        params.append(pytest.param(name, marks=marks))
    return params


class TestRegistry:
    def test_reference_is_default_and_first(self):
        assert backends.DEFAULT_BACKEND == "reference"
        assert backends.backend_names()[0] == "reference"

    def test_all_expected_backends_registered(self):
        assert {"reference", "native", "montgomery", "gmpy2"} <= set(
            backends.backend_names()
        )

    def test_unknown_backend_raises(self):
        with pytest.raises(backends.BackendError, match="unknown field backend"):
            backends.get_backend("no-such-backend")

    def test_instances_are_memoised(self):
        assert backends.get_backend("reference") is backends.get_backend(
            "reference"
        )

    def test_available_backends_always_include_reference(self):
        assert "reference" in _available_backends()

    def test_gmpy2_unavailability_carries_reason(self):
        ok, reason = backends.get_backend("gmpy2").availability()
        if not ok:
            assert "gmpy2" in reason


class TestPrecedence:
    """Selection precedence: explicit kwarg > env var > default."""

    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        assert backends.resolve_backend(None).name == "reference"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "montgomery")
        assert backends.resolve_backend(None).name == "montgomery"

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "montgomery")
        assert backends.resolve_backend("native").name == "native"

    def test_instance_passes_through(self):
        instance = backends.get_backend("montgomery")
        assert backends.resolve_backend(instance) is instance

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "no-such-backend")
        with pytest.raises(backends.BackendError):
            backends.resolve_backend(None)

    def test_context_threads_backend_to_spec(self, monkeypatch):
        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        ctx = PairingContext(backend="montgomery")
        assert ctx.backend.name == "montgomery"
        assert ctx.curve.spec.backend.name == "montgomery"

    def test_kgc_accepts_backend(self):
        kgc = KeyGenerationCenter(McCLS, seed=5, backend="montgomery")
        assert kgc.ctx.backend.name == "montgomery"

    def test_create_scheme_rebinds_backend(self):
        ctx = PairingContext(rng=random.Random(5))
        scheme = create_scheme("mccls", ctx, backend="montgomery")
        assert scheme.ctx.backend.name == "montgomery"
        # the caller's context is never mutated
        assert ctx.backend.name == "reference"


class TestDeprecationShims:
    def test_positional_fieldspec_warns_once(self):
        compat.reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="positional FieldSpec"):
            spec = FieldSpec(19, 1)
        assert spec.xi_a == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FieldSpec(19, 1)  # second use is silent

    def test_compat_fieldspec_shim(self):
        compat.reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="migration shim"):
            spec = compat.FieldSpec(19, 1)
        assert spec == FieldSpec(19, xi_a=1)

    def test_compat_fp_shim(self):
        compat.reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="migration shim"):
            element = compat.Fp(19, 7)
        assert int(element.value) == 7

    def test_positional_fieldspec_rejects_extra_args(self):
        with pytest.raises(TypeError):
            FieldSpec(19, 1, 2)


@pytest.mark.parametrize("name", _backend_params())
class TestCrossBackendIdentity:
    """Every backend must reproduce the reference backend bit for bit."""

    def _spec(self, name):
        return FieldSpec(P254, xi_a=1, backend=name)

    def test_fp_ops_match_reference(self, name):
        ref = FieldSpec(P254, xi_a=1, backend="reference")
        spec = self._spec(name)
        rng = random.Random(0xF00D)
        for _ in range(25):
            a, b = rng.randrange(1, P254), rng.randrange(1, P254)
            exp = rng.randrange(1, P254)
            for op in (
                lambda s: s.fp(a) * s.fp(b),
                lambda s: s.fp(a) + s.fp(b),
                lambda s: s.fp(a) - s.fp(b),
                lambda s: s.fp(a).inverse(),
                lambda s: s.fp(a) ** exp,
                lambda s: s.fp(a) ** -3,
            ):
                assert int(op(spec).value) == int(op(ref).value)

    def test_fp2_and_fp12_ops_match_reference(self, name):
        ref = FieldSpec(P254, xi_a=1, backend="reference")
        spec = self._spec(name)
        rng = random.Random(0xBEEF)
        coeffs = [rng.randrange(P254) for _ in range(12)]
        c0, c1, d0, d1 = (rng.randrange(1, P254) for _ in range(4))
        for op in (
            lambda s: s.fp2(c0, c1) * s.fp2(d0, d1),
            lambda s: s.fp2(c0, c1).square(),
            lambda s: s.fp2(c0, c1).inverse(),
            lambda s: s.fp2(c0, c1) ** 12345,
        ):
            out_spec, out_ref = op(spec), op(ref)
            assert (int(out_spec.c0), int(out_spec.c1)) == (
                int(out_ref.c0),
                int(out_ref.c1),
            )
        for op in (
            lambda s: s.fp12(coeffs) * s.fp12(coeffs[::-1]),
            lambda s: s.fp12(coeffs).square(),
            lambda s: s.fp12(coeffs).inverse(),
        ):
            assert op(spec) == op(ref)

    def test_full_pairing_matches_reference(self, name):
        ref_curve = toy_curve(48, backend="reference")
        curve = toy_curve(48, backend=name)
        assert curve.spec.backend.name == name
        expected = pairing(ref_curve, ref_curve.g1, ref_curve.g2)
        assert pairing(curve, curve.g1, curve.g2) == expected

    def test_pairing_bilinearity(self, name):
        curve = toy_curve(48, backend=name)
        lhs = pairing(curve, curve.g1 * 3, curve.g2 * 5)
        rhs = pairing(curve, curve.g1, curve.g2) ** 15
        assert lhs == rhs

    def test_mccls_sign_verify_matches_reference(self, name):
        def run(backend_name):
            ctx = PairingContext(
                toy_curve(48, backend=backend_name),
                random.Random(0xC0FFEE),
            )
            scheme = create_scheme("mccls", ctx)
            keys = scheme.generate_user_keys("alice@mwcps")
            sig = scheme.sign(b"pluggable backends", keys)
            assert scheme.verify(
                b"pluggable backends", sig, keys.identity, keys.public_key
            )
            assert not scheme.verify(
                b"tampered", sig, keys.identity, keys.public_key
            )
            return (
                int(sig.v),
                int(sig.s.x.c0),
                int(sig.s.x.c1),
                int(sig.r.x.value),
                int(sig.r.y.value),
            )

        assert run(name) == run("reference")

    def test_ecls_sign_verify_matches_reference(self, name):
        def run(backend_name):
            ctx = PairingContext(
                toy_curve(48, backend=backend_name),
                random.Random(0xC0FFEE),
            )
            scheme = create_scheme("ecls", ctx)
            keys = scheme.generate_user_keys("alice@mwcps")
            sig = scheme.sign(b"pairing-free backends", keys)
            assert scheme.verify(
                b"pairing-free backends",
                sig,
                keys.identity,
                keys.public_key,
                keys.public_key_extra,
            )
            assert not scheme.verify(
                b"tampered",
                sig,
                keys.identity,
                keys.public_key,
                keys.public_key_extra,
            )
            assert ctx.ops.pairings == 0
            return (
                int(sig.z),
                int(sig.t_pub.x.value),
                int(sig.t_pub.y.value),
                int(keys.partial.d),
            )

        assert run(name) == run("reference")

    def test_op_counts_match_reference(self, name):
        def count(backend_name):
            curve = toy_curve(48, backend=backend_name)
            pairing(curve, curve.g1, curve.g2)  # warm Frobenius tables
            with obs.collecting() as registry:
                pairing(curve, curve.g1, curve.g2)
            ops = registry.field_ops
            return (
                ops.fp_mul,
                ops.fp2_mul,
                ops.fp12_mul,
                ops.miller_loops,
                ops.final_exps,
            )

        assert count(name) == count("reference")


class TestNativeBackend:
    def test_native_is_always_selectable(self):
        ok, reason = backends.get_backend("native").availability()
        assert ok, reason

    def test_native_reports_flavor(self):
        backend = backends.get_backend("native")
        assert backend.flavor in (
            "gmpy2+cffi-kernel",
            "gmpy2",
            "cffi-kernel",
            "fallback",
        )
        assert backend.name in backend.describe()

    def test_kernel_memoised_per_curve(self):
        backend = backends.get_backend("native")
        curve = toy_curve(48, backend="native")
        assert backend.pairing_kernel(curve) is backend.pairing_kernel(curve)

    def test_curve_factories_cache_per_backend(self):
        assert toy_curve(48, backend="native") is toy_curve(
            48, backend="native"
        )
        assert toy_curve(48, backend="native") is not toy_curve(
            48, backend="reference"
        )

    def test_with_backend_is_identity_when_unchanged(self):
        curve = toy_curve(48, backend="native")
        assert curve.with_backend("native") is curve
        rebound = curve.with_backend("reference")
        assert rebound.spec.backend.name == "reference"
        assert rebound.g1.x == curve.g1.x
