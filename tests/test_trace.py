"""Packet-tracer tests."""

from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.routing.secure_aodv import CryptoMaterial, McCLSAODVNode
from repro.netsim.trace import PacketTracer, packet_kind


def build(secure=False, n=3):
    sim = Simulator(seed=9)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.001)
    tracer = PacketTracer(radio)
    nodes = {}
    for i in range(n):
        if secure:
            nodes[i] = McCLSAODVNode(
                i,
                sim,
                radio,
                StaticPosition((i * 100.0, 0.0)),
                metrics,
                material=CryptoMaterial(226),
            )
        else:
            nodes[i] = AODVNode(
                i, sim, radio, StaticPosition((i * 100.0, 0.0)), metrics
            )
    return sim, nodes, tracer


class TestTracer:
    def test_records_discovery_and_data(self):
        sim, nodes, tracer = build()
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, 0.0))
        sim.run(until=3.0)
        kinds = tracer.counts_by_kind()
        assert kinds.get("RREQ", 0) >= 1
        assert kinds.get("RREP", 0) >= 1
        assert kinds.get("DATA", 0) >= 2  # two hops

    def test_filtering(self):
        sim, nodes, tracer = build()
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, 0.0))
        sim.run(until=3.0)
        rreqs = tracer.filter(kind="RREQ")
        assert rreqs
        assert all(r.kind == "RREQ" for r in rreqs)
        from_node_0 = tracer.filter(sender=0)
        assert all(r.sender == 0 for r in from_node_0)

    def test_bytes_accounting(self):
        sim, nodes, tracer = build()
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, 0.0))
        sim.run(until=3.0)
        sizes = tracer.bytes_by_kind()
        counts = tracer.counts_by_kind()
        for kind in counts:
            assert sizes[kind] >= counts[kind]  # non-zero frames

    def test_secure_frames_marked_authenticated(self):
        sim, nodes, tracer = build(secure=True)
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, 0.0))
        sim.run(until=3.0)
        rreqs = tracer.filter(kind="RREQ")
        assert rreqs and all(r.authenticated for r in rreqs)
        data = tracer.filter(kind="DATA")
        assert data and not any(r.authenticated for r in data)

    def test_summary_and_render(self):
        sim, nodes, tracer = build()
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, 0.0))
        sim.run(until=3.0)
        summary = tracer.summary_text()
        assert "RREQ" in summary and "total" in summary
        rendered = tracer.render(tracer.records[:3])
        assert rendered.count("\n") == 2

    def test_render_explicit_empty_selection_is_empty(self):
        # Regression: an explicit empty selection must render nothing,
        # not fall back to rendering every record.
        sim, nodes, tracer = build()
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, 0.0))
        sim.run(until=3.0)
        assert tracer.records  # the fallback would be non-empty
        assert tracer.render(records=[]) == ""
        assert tracer.render() != ""

    def test_event_sink_mirrors_transmissions(self):
        from repro.obs import ListEventSink

        sim = Simulator(seed=9)
        metrics = MetricsCollector()
        radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.001)
        sink = ListEventSink()
        tracer = PacketTracer(radio, event_sink=sink)
        nodes = {
            i: AODVNode(i, sim, radio, StaticPosition((i * 100.0, 0.0)), metrics)
            for i in range(3)
        }
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, 0.0))
        sim.run(until=3.0)
        transmissions = sink.of_kind("radio.tx")
        assert len(transmissions) == len(tracer.records)
        first = transmissions[0]
        assert first["kind"] == "RREQ"
        assert first["node"] == 0
        assert first["bytes"] > 0

    def test_event_sink_emits_even_past_record_cap(self):
        from repro.obs import ListEventSink

        sim = Simulator(seed=9)
        metrics = MetricsCollector()
        radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.001)
        sink = ListEventSink()
        tracer = PacketTracer(radio, max_records=0, event_sink=sink)
        nodes = {
            i: AODVNode(i, sim, radio, StaticPosition((i * 100.0, 0.0)), metrics)
            for i in range(3)
        }
        nodes[0].send_data(DataPacket(0, 0, 0, 2, 64, 0.0))
        sim.run(until=3.0)
        assert not tracer.records
        assert tracer.dropped_records > 0
        assert sink.of_kind("radio.tx")

    def test_record_cap(self):
        sim, nodes, tracer = build()
        tracer.max_records = 2
        for seq in range(5):
            nodes[0].send_data(DataPacket(0, seq, 0, 1, 16, 0.0))
        sim.run(until=3.0)
        assert len(tracer.records) == 2
        assert tracer.dropped_records > 0

    def test_packet_kind_names(self):
        from repro.netsim.packets import RouteError, RouteReply

        assert packet_kind(RouteError(unreachable=((1, 2),))) == "RERR"
        hello = RouteReply(
            originator=3,
            destination=3,
            destination_seq=0,
            hop_count=0,
            lifetime=2.0,
            responder=3,
        )
        assert packet_kind(hello) == "HELLO"
        assert packet_kind("weird") == "str"
