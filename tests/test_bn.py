"""BN-curve family construction tests (parameter derivation, BN254, toys)."""

import pytest

from repro.errors import ParameterError
from repro.pairing.bn import (
    BN254_T,
    bn254,
    bn_parameters,
    derive_bn_curve,
    default_test_curve,
    toy_curve,
)


class TestParameters:
    def test_bn254_formulae(self):
        p, n, trace = bn_parameters(BN254_T)
        assert p == 36 * BN254_T**4 + 36 * BN254_T**3 + 24 * BN254_T**2 + 6 * BN254_T + 1
        assert n == p + 1 - trace
        assert trace == 6 * BN254_T**2 + 1

    def test_known_bn254_prime(self):
        p, n, _ = bn_parameters(BN254_T)
        assert p == int(
            "218882428718392752222464057452572750886963111572978236626890"
            "37894645226208583"
        )
        assert n == int(
            "218882428718392752222464057452572750885483644004160343436982"
            "04186575808495617"
        )

    def test_non_prime_t_rejected(self):
        with pytest.raises(ParameterError):
            bn_parameters(3)  # p(3) = 36*81+36*27+24*9+19 = 4129? composite check

    def test_negative_t_rejected(self):
        with pytest.raises(ParameterError):
            derive_bn_curve(-5)


class TestToyCurves:
    @pytest.mark.parametrize("bits", [32, 48, 64])
    def test_derivation(self, bits):
        curve = toy_curve(bits)
        assert abs(curve.p.bit_length() - bits) <= 3
        assert (curve.g1 * curve.n).is_infinity()
        assert (curve.g2 * curve.n).is_infinity()
        assert curve.ate_loop_count == 6 * curve.t + 2
        assert curve.final_exp_power == (curve.p**12 - 1) // curve.n

    def test_out_of_range_bits(self):
        with pytest.raises(ParameterError):
            toy_curve(8)
        with pytest.raises(ParameterError):
            toy_curve(512)

    def test_caching(self):
        assert toy_curve(48) is toy_curve(48)
        assert default_test_curve() is toy_curve(64)

    def test_twist_cofactor_identity(self):
        curve = toy_curve(32)
        # #E'(Fp2) = n * (2p - n); any twist point times that is infinity.
        import random

        rng = random.Random(9)
        spec = curve.spec
        while True:
            x = spec.fp2(rng.randrange(curve.p), rng.randrange(curve.p))
            rhs = x * x * x + curve.g2_curve.b
            if rhs.is_square():
                point = curve.g2_curve.unsafe_point(x, rhs.sqrt())
                break
        order = curve.n * curve.twist_cofactor
        assert (point * order).is_infinity()

    def test_membership_checks(self):
        curve = toy_curve(32)
        assert curve.in_g1(curve.g1 * 12345)
        assert curve.in_g2(curve.g2 * 54321)
        assert not curve.in_g1(curve.g2)  # wrong curve entirely
        # A twist point outside the order-n subgroup:
        h2 = curve.twist_cofactor
        assert h2 % curve.n != 0

    def test_frobenius_constants(self):
        curve = toy_curve(32)
        xi = curve.spec.fp2(curve.spec.xi_a, 1)
        assert curve.frob_gamma2 == xi ** ((curve.p - 1) // 3)
        assert curve.frob_gamma3 == xi ** ((curve.p - 1) // 2)

    def test_point_constructors(self):
        curve = toy_curve(32)
        g1 = curve.g1
        rebuilt = curve.g1_point(g1.x.value, g1.y.value)
        assert rebuilt == g1
        g2 = curve.g2
        rebuilt2 = curve.g2_point(g2.x.c0, g2.x.c1, g2.y.c0, g2.y.c1)
        assert rebuilt2 == g2

    def test_random_scalar_range(self):
        import random

        curve = toy_curve(32)
        rng = random.Random(0)
        for _ in range(100):
            s = curve.random_scalar(rng)
            assert 1 <= s < curve.n


class TestBN254:
    def test_construction(self):
        curve = bn254()
        assert curve.p.bit_length() == 254
        assert curve.b == 3
        assert curve.spec.xi_a == 9
        assert curve.g1.x.value == 1
        assert curve.g1.y.value == 2

    @pytest.mark.slow
    def test_generator_orders(self):
        curve = bn254()
        assert (curve.g1 * curve.n).is_infinity()
        assert (curve.g2 * curve.n).is_infinity()

    def test_cached(self):
        assert bn254() is bn254()
