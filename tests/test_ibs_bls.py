"""Identity-based signature (+PKG escrow) and BLS building-block tests."""

import dataclasses
import random

import pytest

from repro.errors import SignatureError
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.schemes.bls import BLSScheme
from repro.schemes.ibs import ChaCheonIBS, PrivateKeyGenerator

CURVE = toy_curve(32)


def make_ibs(seed=3):
    ctx = PairingContext(CURVE, random.Random(seed))
    return ChaCheonIBS(ctx)


class TestIBS:
    def test_sign_verify(self):
        ibs = make_ibs()
        key = ibs.extract("alice")
        sig = ibs.sign(b"m", key)
        assert ibs.verify(b"m", sig, "alice")

    def test_reject_wrong_message(self):
        ibs = make_ibs()
        key = ibs.extract("alice")
        sig = ibs.sign(b"m", key)
        assert not ibs.verify(b"other", sig, "alice")

    def test_reject_wrong_identity(self):
        ibs = make_ibs()
        key = ibs.extract("alice")
        sig = ibs.sign(b"m", key)
        assert not ibs.verify(b"m", sig, "bob")

    def test_tampered_components(self):
        ibs = make_ibs()
        key = ibs.extract("alice")
        sig = ibs.sign(b"m", key)
        assert not ibs.verify(b"m", dataclasses.replace(sig, u=sig.u * 2), "alice")
        assert not ibs.verify(b"m", dataclasses.replace(sig, v=sig.v * 2), "alice")

    def test_wrong_type_raises(self):
        ibs = make_ibs()
        with pytest.raises(SignatureError):
            ibs.verify(b"m", "not-a-signature", "alice")

    def test_key_structure(self):
        ibs = make_ibs()
        key = ibs.extract("carol")
        assert key.d_id == key.q_id * ibs.master_secret


class TestBatchVerification:
    def test_valid_batch(self):
        ibs = make_ibs()
        key = ibs.extract("alice")
        items = [
            (f"m{i}".encode(), ibs.sign(f"m{i}".encode(), key), "alice")
            for i in range(6)
        ]
        assert ibs.batch_verify(items)

    def test_mixed_identities_batch(self):
        ibs = make_ibs()
        items = []
        for ident in ("a", "b", "c"):
            key = ibs.extract(ident)
            items.append((b"shared msg", ibs.sign(b"shared msg", key), ident))
        assert ibs.batch_verify(items)

    def test_empty_batch(self):
        assert make_ibs().batch_verify([])

    def test_one_bad_signature_fails_batch(self):
        ibs = make_ibs()
        key = ibs.extract("alice")
        items = [
            (f"m{i}".encode(), ibs.sign(f"m{i}".encode(), key), "alice")
            for i in range(4)
        ]
        items[2] = (b"forged", items[2][1], "alice")
        assert not ibs.batch_verify(items)

    def test_cancellation_attack_fails(self):
        # Two corrupted signatures whose naive errors would cancel must not
        # pass the weighted batch: swap the V components of two signatures.
        ibs = make_ibs()
        key = ibs.extract("alice")
        sig_a = ibs.sign(b"ma", key)
        sig_b = ibs.sign(b"mb", key)
        swapped = [
            (b"ma", dataclasses.replace(sig_a, v=sig_b.v), "alice"),
            (b"mb", dataclasses.replace(sig_b, v=sig_a.v), "alice"),
        ]
        assert not ibs.batch_verify(swapped)

    def test_batch_costs_two_pairings(self):
        ibs = make_ibs()
        key = ibs.extract("alice")
        items = [
            (f"m{i}".encode(), ibs.sign(f"m{i}".encode(), key), "alice")
            for i in range(5)
        ]
        with ibs.ctx.measure() as meter:
            assert ibs.batch_verify(items)
        assert meter.delta.pairings == 2


class TestEscrow:
    def test_pkg_forges_for_any_identity(self):
        pkg = PrivateKeyGenerator(CURVE, seed=7)
        forged = pkg.escrow_forge(b"payload", "victim-who-never-enrolled")
        assert pkg.scheme.verify(b"payload", forged, "victim-who-never-enrolled")

    def test_enroll(self):
        pkg = PrivateKeyGenerator(CURVE, seed=7)
        key = pkg.enroll("alice")
        sig = pkg.scheme.sign(b"m", key)
        assert pkg.scheme.verify(b"m", sig, "alice")

    def test_mccls_has_no_escrow(self):
        """The certificateless fix: the KGC alone cannot produce the user's
        signing key (S = x^{-1} D_ID needs the user's secret value x)."""
        from repro.core.mccls import McCLS

        scheme = McCLS(PairingContext(CURVE, random.Random(11)))
        keys = scheme.generate_user_keys("alice")
        # The KGC knows s and can derive D_ID, but reconstructing the user's
        # signature S component requires x: check D_ID alone is not S.
        sig = scheme.sign(b"m", keys)
        assert sig.s != keys.partial.d_id


class TestBLS:
    def test_sign_verify(self):
        ctx = PairingContext(CURVE, random.Random(5))
        bls = BLSScheme(ctx)
        kp = bls.generate_keys()
        sig = bls.sign(b"m", kp)
        assert bls.verify(b"m", sig, None, kp.public_key)

    def test_reject(self):
        ctx = PairingContext(CURVE, random.Random(5))
        bls = BLSScheme(ctx)
        kp = bls.generate_keys()
        sig = bls.sign(b"m", kp)
        assert not bls.verify(b"other", sig, None, kp.public_key)
        other = bls.generate_keys()
        assert not bls.verify(b"m", sig, None, other.public_key)

    def test_deterministic_signature(self):
        ctx = PairingContext(CURVE, random.Random(5))
        bls = BLSScheme(ctx)
        kp = bls.generate_keys(secret=99)
        assert bls.sign(b"m", kp) == bls.sign(b"m", kp)

    def test_zero_secret_rejected(self):
        ctx = PairingContext(CURVE, random.Random(5))
        bls = BLSScheme(ctx)
        with pytest.raises(SignatureError):
            bls.generate_keys(secret=CURVE.n)  # = 0 mod n

    def test_wrong_type_raises(self):
        ctx = PairingContext(CURVE, random.Random(5))
        bls = BLSScheme(ctx)
        kp = bls.generate_keys()
        with pytest.raises(SignatureError):
            bls.verify(b"m", 42, None, kp.public_key)
