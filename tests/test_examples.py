"""The shipped examples must run clean end-to-end (they are documentation)."""

import importlib.util
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "path", sorted(EXAMPLES.glob("*.py")), ids=lambda p: p.stem
)
def test_examples_import_without_deprecation_warnings(path):
    """Examples are the migration reference: importing one must not trip
    any deprecation shim (they all carry ``__main__`` guards)."""
    spec = importlib.util.spec_from_file_location(
        f"_example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        spec.loader.exec_module(module)


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "quickstart OK" in out
        assert "tampered message accepted? False" in out

    def test_key_escrow_demo(self):
        out = run_example("key_escrow_demo.py")
        assert "demo OK" in out
        assert "verifiers accept it: True" in out  # the PKG escrow problem
        assert "NO certificate: True" in out

    def test_batch_verification(self):
        out = run_example("batch_verification.py", "--batch", "4")
        assert "forged batch rejected: True" in out
        assert "1 pairing" in out

    @pytest.mark.slow
    def test_secure_routing_demo(self):
        out = run_example("secure_routing_demo.py", "--time", "20")
        assert "packet delivery ratio" in out
        assert "McCLS delivers within" in out

    @pytest.mark.slow
    def test_attack_resilience(self):
        out = run_example("attack_resilience.py", "--time", "20", "--speed", "15")
        assert "blackhole" in out
        assert "rushing" in out

    @pytest.mark.slow
    def test_hardening_mccls(self):
        out = run_example("hardening_mccls.py")
        assert "universal" in out
        assert "100%" in out and "0%" in out

    @pytest.mark.slow
    def test_insider_revocation(self):
        out = run_example("insider_revocation.py")
        assert "revoke at t=5s" in out
        assert "insider" in out

    @pytest.mark.slow
    def test_mobility_analysis(self):
        out = run_example("mobility_analysis.py")
        assert "link chg/s" in out
