"""AODV edge-case tests: TTL rings, buffers, cache pruning, RERR chains."""

from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import (
    AODVNode,
    MAX_BUFFERED_PACKETS,
    TTL_START,
)


def line_net(n, spacing=100.0, seed=4, **kwargs):
    sim = Simulator(seed=seed)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.001)
    nodes = {
        i: AODVNode(
            i, sim, radio, StaticPosition((i * spacing, 0.0)), metrics, **kwargs
        )
        for i in range(n)
    }
    return sim, metrics, nodes


def send(sim, nodes, src, dst, count=1):
    for seq in range(count):
        nodes[src].send_data(DataPacket(0, seq, src, dst, 64, sim.now))


class TestExpandingRing:
    def test_first_ring_limited_by_ttl(self):
        """With TTL_START=4 the first flood cannot reach hop 7; the
        expanded retry can - the destination is found on the second ring."""
        sim, metrics, nodes = line_net(9)
        send(sim, nodes, 0, 8)
        sim.run(until=10.0)
        assert metrics.data_received == 1
        assert metrics.rreq_retried >= 1  # needed at least one ring expansion
        assert metrics.dropped_ttl > 0  # the first ring hit its boundary
        assert TTL_START < 8

    def test_near_destination_no_retry(self):
        sim, metrics, nodes = line_net(4)
        send(sim, nodes, 0, 3)
        sim.run(until=5.0)
        assert metrics.data_received == 1
        assert metrics.rreq_retried == 0


class TestBuffering:
    def test_buffer_overflow_drops(self):
        sim, metrics, nodes = line_net(2)
        # Flood the buffer towards an unreachable destination.
        for seq in range(MAX_BUFFERED_PACKETS + 20):
            nodes[0].send_data(DataPacket(0, seq, 0, 99, 64, sim.now))
        assert metrics.dropped_buffer_overflow >= 19
        sim.run(until=10.0)
        assert metrics.data_received == 0

    def test_buffered_packets_preserve_order(self):
        sim, metrics, nodes = line_net(3)
        received = []
        original = nodes[2]._handle_data

        def spy(frame, packet):
            received.append(packet.seq)
            original(frame, packet)

        nodes[2]._handle_data = spy
        send(sim, nodes, 0, 2, count=5)
        sim.run(until=5.0)
        assert received == sorted(received)


class TestSeenCache:
    def test_cache_pruned(self):
        sim, metrics, nodes = line_net(2)
        node = nodes[0]
        # Inject far more synthetic entries than the prune threshold.
        for i in range(5000):
            node._seen_rreqs[(i, i)] = -1.0  # long expired
        node._prune_seen_cache()
        assert len(node._seen_rreqs) == 0

    def test_fresh_entries_survive_prune(self):
        sim, metrics, nodes = line_net(2)
        node = nodes[0]
        node._seen_rreqs[(1, 1)] = sim.now + 100.0
        node._seen_rreqs[(2, 2)] = -1.0
        node._prune_seen_cache()
        assert (1, 1) in node._seen_rreqs
        assert (2, 2) not in node._seen_rreqs


class TestRouteErrorChain:
    def test_rerr_invalidate_propagates(self):
        """When a mid-path node dies, the RERR chain invalidates routes at
        upstream nodes, and traffic recovers via rediscovery."""
        sim, metrics, nodes = line_net(5)
        send(sim, nodes, 0, 4)
        sim.run(until=3.0)
        assert metrics.data_received == 1
        # Node 2 dies; node 1 detects on next forward and reports.
        nodes[2].radio.detach(2)
        send(sim, nodes, 0, 4, count=2)
        sim.run(until=12.0)
        # No alternative path exists: packets are dropped as no-route...
        assert metrics.data_received == 1
        assert metrics.dropped_no_route >= 1
        # ... and at least one RERR was emitted along the way.
        assert metrics.rerr_sent >= 1

    def test_destination_sequence_bumped_on_invalidation(self):
        sim, metrics, nodes = line_net(3)
        send(sim, nodes, 0, 2)
        sim.run(until=2.0)
        entry = nodes[0].table.entry(2)
        seq_before = entry.destination_seq
        nodes[0].table.invalidate(2)
        assert nodes[0].table.entry(2).destination_seq == seq_before + 1
