"""Gray-hole (selective forwarding) attacker tests."""

import pytest

from repro.netsim.attacks import GrayHoleNode
from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.scenario import ScenarioConfig, run_scenario


def build(drop_probability=0.5):
    sim = Simulator(seed=4)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.002)
    positions = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (200.0, 0.0)}
    nodes = {
        i: AODVNode(i, sim, radio, StaticPosition(p), metrics)
        for i, p in positions.items()
    }
    nodes[9] = GrayHoleNode(
        9,
        sim,
        radio,
        StaticPosition((50.0, 80.0)),
        metrics,
        fake_seq_boost=100,
        drop_probability=drop_probability,
    )
    return sim, metrics, nodes


class TestGrayHole:
    def test_partial_forwarding(self):
        sim, metrics, nodes = build(drop_probability=0.5)
        for seq in range(20):
            nodes[0].send_data(DataPacket(0, seq, 0, 2, 64, sim.now))
        sim.run(until=10.0)
        # Some packets die at the attacker, some get through - the gray
        # hole's signature behaviour.
        assert metrics.dropped_by_attacker > 0
        assert metrics.data_received > 0

    def test_full_drop_equals_blackhole(self):
        sim, metrics, nodes = build(drop_probability=1.0)
        for seq in range(10):
            nodes[0].send_data(DataPacket(0, seq, 0, 2, 64, sim.now))
        sim.run(until=10.0)
        assert metrics.data_received < 10
        assert metrics.dropped_by_attacker > 0

    def test_zero_drop_is_honest_forwarder(self):
        sim, metrics, nodes = build(drop_probability=0.0)
        for seq in range(10):
            nodes[0].send_data(DataPacket(0, seq, 0, 2, 64, sim.now))
        sim.run(until=10.0)
        assert metrics.data_received == 10
        assert metrics.dropped_by_attacker == 0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            build(drop_probability=1.5)

    def test_scenario_integration(self):
        config = ScenarioConfig(
            attack="grayhole",
            blackhole_fake_seq_boost=100,
            sim_time_s=20.0,
            n_flows=3,
            n_nodes=14,
            seed=5,
        )
        report = run_scenario(config).report()
        assert report["data_sent"] > 0

    def test_mccls_immune(self):
        report = run_scenario(
            ScenarioConfig(
                attack="grayhole",
                protocol="mccls",
                blackhole_fake_seq_boost=100,
                sim_time_s=20.0,
                n_flows=3,
                n_nodes=14,
                seed=5,
            )
        ).report()
        assert report["packet_drop_ratio"] == 0.0
