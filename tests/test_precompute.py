"""Fixed-base precomputation tests: wNAF, comb tables, cache keying.

The fast paths (windowed-NAF for one-shot scalars, comb tables for
registered fixed bases) must agree bit-for-bit with the plain affine
double-and-add ladder on every curve - a wrong multiple would make
signatures verify against the wrong keys, silently.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import CurveError
from repro.pairing.bn import bn254, toy_curve
from repro.pairing.curve import (
    PrecomputedPoint,
    _wnaf_digits,
    _wnaf_scalar_mult,
    point_key,
)
from repro.pairing.groups import PairingContext

CURVE = toy_curve(32)
BN254 = bn254()


def affine_mult(point, k):
    result = point.curve.infinity()
    addend = point
    while k:
        if k & 1:
            result = result + addend
        addend = addend.double()
        k >>= 1
    return result


class TestWnafDigits:
    @given(st.integers(min_value=1, max_value=2**96), st.integers(2, 8))
    @settings(max_examples=60)
    def test_digits_reconstruct_scalar(self, scalar, width):
        digits = _wnaf_digits(scalar, width)
        assert sum(d << i for i, d in enumerate(digits)) == scalar

    @given(st.integers(min_value=1, max_value=2**96), st.integers(2, 8))
    @settings(max_examples=60)
    def test_digits_are_zero_or_odd_and_bounded(self, scalar, width):
        half = 1 << (width - 1)
        for digit in _wnaf_digits(scalar, width):
            assert digit == 0 or (digit % 2 == 1 and abs(digit) < half)


class TestWnafMult:
    @given(st.integers(min_value=2**64, max_value=2**96))
    @settings(max_examples=30)
    def test_matches_affine_g1(self, k):
        assert CURVE.g1 * k == affine_mult(CURVE.g1, k)

    @given(st.integers(min_value=2**64, max_value=2**96))
    @settings(max_examples=10)
    def test_matches_affine_g2(self, k):
        assert CURVE.g2 * k == affine_mult(CURVE.g2, k)

    def test_explicit_call_small_scalars(self):
        # _wnaf_scalar_mult itself must be correct below the __mul__
        # dispatch threshold too.
        for k in (1, 2, 3, 7, 8, 255, CURVE.n - 1, CURVE.n + 5):
            assert _wnaf_scalar_mult(CURVE.g1, k) == affine_mult(CURVE.g1, k)

    def test_order_multiple_is_infinity(self):
        big = CURVE.n << 70  # forces the wNAF path, cancels to infinity
        assert (CURVE.g1 * big).is_infinity()

    @pytest.mark.slow
    def test_bn254_matches_ladder(self):
        rng = random.Random(7)
        for k in (rng.randrange(1, BN254.n) for _ in range(3)):
            assert BN254.g1 * k == affine_mult(BN254.g1, k)


class TestPrecomputedPoint:
    def test_matches_affine_across_widths(self):
        rng = random.Random(3)
        for width in (2, 4, 6):
            handle = PrecomputedPoint(CURVE.g1, width=width)
            for k in [1, 2, CURVE.n - 1] + [
                rng.randrange(1, CURVE.n) for _ in range(20)
            ]:
                assert handle.mul(k) == affine_mult(CURVE.g1, k)

    def test_g2_comb(self):
        handle = PrecomputedPoint(CURVE.g2)
        rng = random.Random(5)
        for k in (rng.randrange(1, CURVE.n) for _ in range(8)):
            assert handle.mul(k) == affine_mult(CURVE.g2, k)

    @pytest.mark.slow
    def test_bn254_comb(self):
        handle = PrecomputedPoint(BN254.g1)
        rng = random.Random(9)
        for k in (rng.randrange(1, BN254.n) for _ in range(3)):
            assert handle.mul(k) == BN254.g1 * k

    def test_infinity_rejected(self):
        with pytest.raises(CurveError):
            PrecomputedPoint(CURVE.g1_curve.infinity())

    def test_width_out_of_range_rejected(self):
        for width in (0, 1, 9):
            with pytest.raises(CurveError):
                PrecomputedPoint(CURVE.g1, width=width)

    def test_covers(self):
        handle = PrecomputedPoint(CURVE.g1, bits=40)
        assert handle.covers(1) and handle.covers((1 << 40) - 1)
        assert not handle.covers(0)
        assert not handle.covers(-3)
        assert not handle.covers(1 << 40)
        assert not handle.covers("7")

    def test_uncovered_scalar_falls_back(self):
        handle = PrecomputedPoint(CURVE.g1, bits=16)
        k = (1 << 20) + 7
        assert handle.mul(k) == affine_mult(CURVE.g1, k)

    def test_build_is_lazy_and_idempotent(self):
        handle = PrecomputedPoint(CURVE.g1)
        assert not handle.built
        handle.build()
        assert handle.built
        table = handle._table
        handle.build()
        assert handle._table is table


class TestPointKey:
    def test_equal_points_from_different_routes_share_a_key(self):
        a = CURVE.g1 * 6
        b = (CURVE.g1 * 2) + (CURVE.g1 * 4)
        assert a == b
        assert point_key(a) == point_key(b)

    def test_distinct_points_differ(self):
        assert point_key(CURVE.g1 * 2) != point_key(CURVE.g1 * 3)

    def test_infinity_key(self):
        assert point_key(CURVE.g1_curve.infinity()) == ("inf",)

    def test_g2_key_is_hashable(self):
        assert {point_key(CURVE.g2 * 5): 1}


class TestContextFastPath:
    def test_threshold_defers_first_use(self):
        ctx = PairingContext(CURVE, random.Random(1))
        base = ctx.fixed_base(CURVE.g1 * 11)
        handle = ctx.precomputed(base)
        assert handle is not None and not handle.built
        ctx.g1_mul(base, 123456789)  # first use stays on the ladder
        assert not handle.built
        ctx.g1_mul(base, 987654321)  # second use builds the comb
        assert handle.built

    def test_fast_path_matches_naive_context(self):
        fast = PairingContext(CURVE, random.Random(2))
        naive = PairingContext(CURVE, random.Random(2), precompute=False)
        base = fast.fixed_base(CURVE.g1)
        assert naive.precomputed(CURVE.g1) is None
        for k in (3, 17, CURVE.n - 2, 123456789012345):
            assert fast.g1_mul(base, k) == naive.g1_mul(CURVE.g1, k)

    def test_precomp_counters(self):
        with obs.collecting() as registry:
            ctx = PairingContext(CURVE, random.Random(3))
            base = ctx.fixed_base(CURVE.g2)
            for k in (5, 7, 9):
                ctx.g2_mul(base, k * 65537)
        assert registry.counter_total("precomp.table_builds") == 1
        assert registry.counter_total("precomp.fast_mults") == 2

    def test_disabled_context_registers_nothing(self):
        ctx = PairingContext(CURVE, precompute=False)
        assert ctx.fixed_base(CURVE.g1) is CURVE.g1
        assert len(ctx._fixed_bases) == 0


class TestPairCacheKeying:
    def test_equal_points_hit_one_cache_entry(self):
        ctx = PairingContext(CURVE, random.Random(4))
        p_a = CURVE.g1 * 6
        p_b = (CURVE.g1 * 2) + (CURVE.g1 * 4)  # same element, new object
        q = CURVE.g2 * 3
        first = ctx.pair_cached(p_a, q)
        second = ctx.pair_cached(p_b, q)
        assert first == second
        assert ctx.ops.pairings == 1
        assert ctx.ops.cached_pairing_hits == 1
        assert len(ctx._pairing_cache) == 1

    def test_distinct_points_miss(self):
        ctx = PairingContext(CURVE, random.Random(4))
        ctx.pair_cached(CURVE.g1 * 2, CURVE.g2)
        ctx.pair_cached(CURVE.g1 * 3, CURVE.g2)
        assert ctx.ops.pairings == 2
        assert ctx.ops.cached_pairing_hits == 0
