"""Wire-format tests: roundtrips, sizes, malformed-input rejection."""

import random

import pytest

from repro.core import serialization as ser
from repro.core.mccls import McCLS
from repro.errors import SerializationError
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext

CURVE = toy_curve(32)


@pytest.fixture()
def scheme():
    return McCLS(PairingContext(CURVE, random.Random(2)))


class TestPointEncoding:
    def test_g1_roundtrip(self):
        point = CURVE.g1 * 777
        blob = ser.encode_g1(CURVE, point)
        decoded, rest = ser.decode_g1(CURVE, blob)
        assert decoded == point
        assert rest == b""

    def test_g1_infinity_roundtrip(self):
        blob = ser.encode_g1(CURVE, CURVE.g1_curve.infinity())
        decoded, _ = ser.decode_g1(CURVE, blob)
        assert decoded.is_infinity()

    def test_g2_roundtrip(self):
        point = CURVE.g2 * 999
        decoded, rest = ser.decode_g2(CURVE, ser.encode_g2(CURVE, point))
        assert decoded == point
        assert rest == b""

    def test_g2_infinity_roundtrip(self):
        blob = ser.encode_g2(CURVE, CURVE.g2_curve.infinity())
        decoded, _ = ser.decode_g2(CURVE, blob)
        assert decoded.is_infinity()

    def test_sizes_are_static(self):
        assert len(ser.encode_g1(CURVE, CURVE.g1)) == ser.g1_point_size(CURVE)
        assert len(ser.encode_g2(CURVE, CURVE.g2)) == ser.g2_point_size(CURVE)

    def test_truncated_g1(self):
        blob = ser.encode_g1(CURVE, CURVE.g1)
        with pytest.raises(SerializationError):
            ser.decode_g1(CURVE, blob[:-1])

    def test_bad_tag(self):
        blob = ser.encode_g1(CURVE, CURVE.g1)
        with pytest.raises(SerializationError):
            ser.decode_g1(CURVE, b"\x07" + blob[1:])

    def test_off_curve_point_rejected(self):
        width = (CURVE.p.bit_length() + 7) // 8
        bogus = bytes([1]) + (1).to_bytes(width, "big") + (1).to_bytes(width, "big")
        with pytest.raises(SerializationError):
            ser.decode_g1(CURVE, bogus)

    def test_wrong_group_encode_raises(self):
        with pytest.raises(SerializationError):
            ser.encode_g1(CURVE, CURVE.g2)
        with pytest.raises(SerializationError):
            ser.encode_g2(CURVE, CURVE.g1)

    def test_trailing_bytes_returned(self):
        blob = ser.encode_g1(CURVE, CURVE.g1) + b"tail"
        _, rest = ser.decode_g1(CURVE, blob)
        assert rest == b"tail"


class TestScalarEncoding:
    def test_roundtrip(self):
        blob = ser.encode_scalar(CURVE, 123456)
        value, rest = ser.decode_scalar(CURVE, blob)
        assert value == 123456
        assert rest == b""

    def test_out_of_range_encode(self):
        with pytest.raises(SerializationError):
            ser.encode_scalar(CURVE, CURVE.n)
        with pytest.raises(SerializationError):
            ser.encode_scalar(CURVE, -1)

    def test_out_of_range_decode(self):
        width = ser.scalar_size(CURVE)
        with pytest.raises(SerializationError):
            ser.decode_scalar(CURVE, (CURVE.n).to_bytes(width, "big"))

    def test_truncated(self):
        with pytest.raises(SerializationError):
            ser.decode_scalar(CURVE, b"\x01")


class TestSignatureEncoding:
    def test_roundtrip(self, scheme):
        keys = scheme.generate_user_keys("alice")
        sig = scheme.sign(b"m", keys)
        blob = ser.encode_mccls_signature(CURVE, sig)
        assert len(blob) == ser.mccls_signature_size(CURVE)
        assert ser.decode_mccls_signature(CURVE, blob) == sig

    def test_decoded_signature_verifies(self, scheme):
        keys = scheme.generate_user_keys("alice")
        sig = scheme.sign(b"m", keys)
        decoded = ser.decode_mccls_signature(
            CURVE, ser.encode_mccls_signature(CURVE, sig)
        )
        assert scheme.verify(b"m", decoded, keys.identity, keys.public_key)

    def test_trailing_bytes_rejected(self, scheme):
        keys = scheme.generate_user_keys("alice")
        sig = scheme.sign(b"m", keys)
        blob = ser.encode_mccls_signature(CURVE, sig) + b"x"
        with pytest.raises(SerializationError):
            ser.decode_mccls_signature(CURVE, blob)

    def test_bn254_signature_size(self):
        from repro.pairing.bn import bn254

        curve = bn254()
        # 32-byte scalar + 129-byte G2 + 65-byte G1 = 226 bytes.
        assert ser.mccls_signature_size(curve) == 226


class TestIdentityEncoding:
    def test_roundtrip(self):
        blob = ser.encode_identity("node-17")
        ident, rest = ser.decode_identity(blob + b"more")
        assert ident == "node-17"
        assert rest == b"more"

    def test_unicode(self):
        ident, _ = ser.decode_identity(ser.encode_identity("nœud-17"))
        assert ident == "nœud-17"

    def test_truncated(self):
        with pytest.raises(SerializationError):
            ser.decode_identity(b"\x00")
        with pytest.raises(SerializationError):
            ser.decode_identity(b"\x00\x05ab")

    def test_too_long(self):
        with pytest.raises(SerializationError):
            ser.encode_identity("x" * 70000)
