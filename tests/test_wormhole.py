"""Wormhole-attack tests (extension attack beyond the paper's two)."""

from repro.netsim.attacks import WormholeNode
from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.routing.secure_aodv import CryptoMaterial, McCLSAODVNode
from repro.netsim.scenario import ScenarioConfig, run_scenario


def build_net(secure=False):
    """A 6-hop line 0..6 with wormhole endpoints near both ends.

    The tunnel makes node 0's flood appear next to node 6 instantly, so
    the wormhole shortcut (2 "hops") beats the honest 6-hop path.
    """
    sim = Simulator(seed=4)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.002)
    nodes = {}
    for i in range(7):
        if secure:
            nodes[i] = McCLSAODVNode(
                i,
                sim,
                radio,
                StaticPosition((i * 100.0, 0.0)),
                metrics,
                material=CryptoMaterial(226),
            )
        else:
            nodes[i] = AODVNode(
                i, sim, radio, StaticPosition((i * 100.0, 0.0)), metrics
            )
    w_a = WormholeNode(100, sim, radio, StaticPosition((50.0, 60.0)), metrics)
    w_b = WormholeNode(101, sim, radio, StaticPosition((550.0, 60.0)), metrics)
    w_a.pair_with(w_b)
    nodes[100], nodes[101] = w_a, w_b
    return sim, metrics, nodes


def send(sim, nodes, src, dst, count=1):
    for seq in range(count):
        nodes[src].send_data(DataPacket(0, seq, src, dst, 128, sim.now))


class TestWormholeVsAODV:
    def test_tunnel_attracts_route_and_drops_data(self):
        sim, metrics, nodes = build_net(secure=False)
        send(sim, nodes, 0, 6, count=10)
        sim.run(until=10.0)
        assert metrics.dropped_by_attacker > 0
        assert metrics.data_received < 10

    def test_pairing(self):
        sim, metrics, nodes = build_net()
        assert nodes[100].partner is nodes[101]
        assert nodes[101].partner is nodes[100]

    def test_replay_is_deduplicated(self):
        """Each flood crosses the tunnel once, not in a loop."""
        sim, metrics, nodes = build_net()
        send(sim, nodes, 0, 6)
        sim.run(until=5.0)
        # Total RREQ forwards stay bounded (no tunnel ping-pong storm).
        assert metrics.rreq_forwarded < 30


class TestWormholeVsMcCLS:
    def test_replayed_copies_rejected(self):
        sim, metrics, nodes = build_net(secure=True)
        send(sim, nodes, 0, 6, count=10)
        sim.run(until=10.0)
        assert metrics.dropped_by_attacker == 0
        assert metrics.auth_rejected >= 1
        assert metrics.data_received == 10


class TestWormholeScenario:
    def test_scenario_integration(self):
        config = ScenarioConfig(
            attack="wormhole",
            sim_time_s=20.0,
            n_flows=3,
            n_nodes=14,
            seed=5,
        )
        result = run_scenario(config)
        assert len(result.attacker_ids) == 2
        roles = {result.config.attack}
        assert roles == {"wormhole"}

    def test_mccls_immune_in_scenario(self):
        report = run_scenario(
            ScenarioConfig(
                attack="wormhole",
                protocol="mccls",
                sim_time_s=20.0,
                n_flows=3,
                n_nodes=14,
                seed=5,
            )
        ).report()
        assert report["packet_drop_ratio"] == 0.0
