"""Baseline CLS scheme tests (AP, ZWXF, YHG) - Table 1's comparison rows."""

import dataclasses
import random

import pytest

from repro.errors import SignatureError
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.schemes import APScheme, YHGScheme, ZWXFScheme
from repro.schemes.registry import all_scheme_classes, scheme_class, scheme_names

CURVE = toy_curve(32)
ALL_BASELINES = [APScheme, ZWXFScheme, YHGScheme]


def make(cls, seed=0xB0B):
    scheme = cls(PairingContext(CURVE, random.Random(seed)))
    keys = scheme.generate_user_keys("baseline@manet")
    return scheme, keys


@pytest.mark.parametrize("cls", ALL_BASELINES)
class TestCommonBehaviour:
    def test_sign_verify(self, cls):
        scheme, keys = make(cls)
        sig = scheme.sign(b"msg", keys)
        assert scheme.verify(
            b"msg", sig, keys.identity, keys.public_key, keys.public_key_extra
        )

    def test_reject_wrong_message(self, cls):
        scheme, keys = make(cls)
        sig = scheme.sign(b"msg", keys)
        assert not scheme.verify(
            b"other", sig, keys.identity, keys.public_key, keys.public_key_extra
        )

    def test_reject_wrong_identity(self, cls):
        scheme, keys = make(cls)
        sig = scheme.sign(b"msg", keys)
        assert not scheme.verify(
            b"msg", sig, "mallory", keys.public_key, keys.public_key_extra
        )

    def test_reject_other_users_key(self, cls):
        scheme, keys = make(cls)
        other = scheme.generate_user_keys("other@manet")
        sig = scheme.sign(b"msg", keys)
        assert not scheme.verify(
            b"msg", sig, keys.identity, other.public_key, other.public_key_extra
        )

    def test_many_messages(self, cls):
        scheme, keys = make(cls)
        for i in range(5):
            msg = f"routing packet {i}".encode()
            sig = scheme.sign(msg, keys)
            assert scheme.verify(
                msg, sig, keys.identity, keys.public_key, keys.public_key_extra
            )

    def test_wrong_signature_type_raises(self, cls):
        scheme, keys = make(cls)
        with pytest.raises(SignatureError):
            scheme.verify(
                b"m", object(), keys.identity, keys.public_key, keys.public_key_extra
            )


class TestAPSpecific:
    def test_two_point_public_key(self):
        scheme, keys = make(APScheme)
        assert keys.public_key_extra is not None
        assert len(keys.public_key_points()) == 2
        # Y_A = s * X_A is the certificateless key-consistency relation.
        assert keys.public_key_extra == keys.public_key * scheme.master_secret

    def test_inconsistent_key_pair_rejected(self):
        scheme, keys = make(APScheme)
        sig = scheme.sign(b"m", keys)
        bogus_extra = keys.public_key_extra * 2
        assert not scheme.verify(
            b"m", sig, keys.identity, keys.public_key, bogus_extra
        )

    def test_missing_extra_key_raises(self):
        scheme, keys = make(APScheme)
        sig = scheme.sign(b"m", keys)
        with pytest.raises(SignatureError):
            scheme.verify(b"m", sig, keys.identity, keys.public_key, None)

    def test_full_private_key_stored(self):
        scheme, keys = make(APScheme)
        assert keys.full_private_key == keys.partial.d_id * keys.secret_value

    def test_sign_profile(self):
        scheme, keys = make(APScheme)
        _, ops = scheme.measure_sign(b"m", keys)
        assert ops.pairings == 1
        assert ops.scalar_mults == 3

    def test_tampered_v_scalar(self):
        scheme, keys = make(APScheme)
        sig = scheme.sign(b"m", keys)
        bad = dataclasses.replace(sig, v=(sig.v + 1) % scheme.ctx.order)
        assert not scheme.verify(
            b"m", bad, keys.identity, keys.public_key, keys.public_key_extra
        )


class TestZWXFSpecific:
    def test_verify_profile_four_pairings_cold(self):
        scheme, keys = make(ZWXFScheme)
        sig = scheme.sign(b"m", keys)
        _, ops = scheme.measure_verify(b"m", sig, keys)
        assert ops.pairings == 4

    def test_w_prime_cache(self):
        scheme, keys = make(ZWXFScheme)
        scheme.sign(b"warm", keys)
        _, ops = scheme.measure_sign(b"steady", keys)
        assert ops.group_hashes == 1  # only W = H3(M, ID, U) is fresh
        assert ops.scalar_mults == 3

    def test_tampered_u(self):
        scheme, keys = make(ZWXFScheme)
        sig = scheme.sign(b"m", keys)
        bad = dataclasses.replace(sig, u=sig.u * 3)
        assert not scheme.verify(b"m", bad, keys.identity, keys.public_key)


class TestYHGSpecific:
    def test_verify_profile_two_pairings_cold(self):
        scheme, keys = make(YHGScheme)
        sig = scheme.sign(b"m", keys)
        _, ops = scheme.measure_verify(b"m", sig, keys)
        assert ops.pairings == 2

    def test_warm_verify_single_pairing(self):
        scheme, keys = make(YHGScheme)
        sig = scheme.sign(b"m", keys)
        scheme.verify(b"m", sig, keys.identity, keys.public_key)
        _, ops = scheme.measure_verify(b"m", sig, keys)
        assert ops.pairings == 1

    def test_sign_no_pairings(self):
        scheme, keys = make(YHGScheme)
        _, ops = scheme.measure_sign(b"m", keys)
        assert ops.pairings == 0
        assert ops.scalar_mults == 2

    def test_v_infinity_rejected(self):
        scheme, keys = make(YHGScheme)
        sig = scheme.sign(b"m", keys)
        bad = dataclasses.replace(sig, v=CURVE.g2_curve.infinity())
        assert not scheme.verify(b"m", bad, keys.identity, keys.public_key)


class TestRegistry:
    def test_names(self):
        assert scheme_names() == ["ap", "zwxf", "yhg", "mccls", "mccls-plus"]

    def test_lookup(self):
        assert scheme_class("ap") is APScheme
        from repro.core.mccls import McCLS

        assert scheme_class("mccls") is McCLS

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            scheme_class("nope")

    def test_all_classes(self):
        classes = all_scheme_classes()
        assert set(classes) == {"ap", "zwxf", "yhg", "mccls", "mccls-plus"}
        for name, cls in classes.items():
            assert cls.name == name
