"""Chaos proxy: plan validation, each fault class, determinism, and the
resilient client surviving a lossy wire with exact verdicts.

Most tests run the proxy against a trivial frame-echo upstream so each
fault class is observable in isolation; the last one puts a real gateway
behind the proxy and asserts the retrying client still gets every
verdict right.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import ServiceError
from repro.pairing.bn import toy_curve
from repro.service import protocol
from repro.service.chaosproxy import ChaosPlan, ChaosProxy
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.server import VerificationGateway

CURVE = toy_curve(32)


class TestChaosPlan:
    def test_validate_rejects_bad_rates(self):
        with pytest.raises(ServiceError):
            ChaosPlan(reset_rate=1.5).validate()
        with pytest.raises(ServiceError):
            ChaosPlan(stall_rate=-0.1).validate()
        with pytest.raises(ServiceError):
            ChaosPlan(reset_rate=0.5, truncate_rate=0.4,
                      stall_rate=0.2).validate()
        with pytest.raises(ServiceError):
            ChaosPlan(latency_s=-1.0).validate()
        ChaosPlan(reset_rate=0.5, truncate_rate=0.3,
                  stall_rate=0.2).validate()  # exactly 1.0 is fine

    def test_from_spec_round_trip_and_unknown_keys(self):
        spec = {"reset": 0.1, "truncate": 0.05, "stall": 0.2,
                "stall_s": 0.3, "latency_s": 0.01, "jitter_s": 0.02,
                "seed": 7}
        plan = ChaosPlan.from_spec(spec)
        assert plan.reset_rate == 0.1
        assert plan.to_spec() == spec
        with pytest.raises(ServiceError):
            ChaosPlan.from_spec({"rest": 0.1})  # typo fails loudly
        with pytest.raises(ServiceError):
            ChaosPlan.from_spec([0.1])

    def test_empty_property(self):
        assert ChaosPlan().empty
        assert not ChaosPlan(latency_s=0.1).empty
        assert not ChaosPlan(reset_rate=0.01).empty


async def _echo_upstream():
    """A frame-echo server: every well-formed frame comes straight back."""

    async def handler(reader, writer):
        try:
            while True:
                header = await reader.readexactly(4)
                body = await reader.readexactly(protocol.frame_length(header))
                writer.write(header + body)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


async def _echo_session(proxy, frames: int):
    """Send frames through the proxy; returns how many echoed back."""
    reader, writer = await asyncio.open_connection(proxy.host, proxy.port)
    echoed = 0
    try:
        for i in range(frames):
            writer.write(protocol.encode_frame(b"frame-%d" % i))
            await writer.drain()
            header = await asyncio.wait_for(reader.readexactly(4), 5.0)
            body = await asyncio.wait_for(
                reader.readexactly(protocol.frame_length(header)), 5.0
            )
            assert body == b"frame-%d" % i  # never corrupted, only delayed
            echoed += 1
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        pass
    finally:
        try:
            writer.close()
        except (ConnectionError, OSError):
            pass
    return echoed


def _proxy_run(plan: ChaosPlan, frames: int = 10):
    """One echo session through a fresh proxy; returns (echoed, proxy)."""

    async def main():
        server, port = await _echo_upstream()
        proxy = await ChaosProxy("127.0.0.1", port, plan).start()
        try:
            echoed = await _echo_session(proxy, frames)
        finally:
            await proxy.stop()
            server.close()
            await server.wait_closed()
        return echoed, proxy

    return asyncio.run(main())


class TestFaultClasses:
    def test_empty_plan_is_a_transparent_pipe(self):
        echoed, proxy = _proxy_run(ChaosPlan(), frames=5)
        assert echoed == 5
        assert proxy.counters["forwarded_frames"] == 10  # both directions
        assert proxy.counters["resets"] == 0
        assert proxy.counters["truncations"] == 0
        assert proxy.counters["stalls"] == 0

    def test_reset_cuts_the_conversation(self):
        echoed, proxy = _proxy_run(ChaosPlan(reset_rate=1.0), frames=3)
        assert echoed == 0
        assert proxy.counters["resets"] == 1
        assert proxy.counters["forwarded_frames"] == 0

    def test_truncate_leaves_a_strict_half_frame(self):
        echoed, proxy = _proxy_run(ChaosPlan(truncate_rate=1.0), frames=3)
        assert echoed == 0
        assert proxy.counters["truncations"] == 1
        entry = next(
            e for e in proxy.log if e["event"] == "chaos.truncate"
        )
        assert 0 <= entry["kept"] < entry["of"]  # strict prefix

    def test_stall_delays_but_does_not_corrupt(self):
        started = time.perf_counter()
        echoed, proxy = _proxy_run(
            ChaosPlan(stall_rate=1.0, stall_s=0.15), frames=2
        )
        elapsed = time.perf_counter() - started
        assert echoed == 2  # every frame still arrives intact
        assert proxy.counters["stalls"] == 4  # both directions, per frame
        assert elapsed >= 0.55  # 4 stalls of 0.15s actually happened

    def test_latency_applies_to_every_frame(self):
        started = time.perf_counter()
        echoed, proxy = _proxy_run(ChaosPlan(latency_s=0.05), frames=3)
        elapsed = time.perf_counter() - started
        assert echoed == 3
        assert proxy.counters["delayed_frames"] == 6
        assert elapsed >= 0.28  # 6 frames x 0.05s minimum

    def test_same_seed_reproduces_the_same_fault_sequence(self):
        plan = ChaosPlan(reset_rate=0.25, stall_rate=0.1,
                         stall_s=0.01, seed=7)
        first_echoed, first = _proxy_run(plan, frames=12)
        second_echoed, second = _proxy_run(plan, frames=12)
        assert first_echoed == second_echoed
        assert first.summary() == second.summary()
        assert [
            (e["event"], e["direction"]) for e in first.log
        ] == [(e["event"], e["direction"]) for e in second.log]


class TestResilientClientThroughChaos:
    def test_verdicts_stay_exact_over_a_lossy_wire(self):
        """Resets mid-pipeline: the client reconnects through the proxy,
        replays only unanswered verifies, and every verdict is right."""

        async def main():
            gateway = VerificationGateway(curve=CURVE, seed=5)
            await gateway.start()
            proxy = await ChaosProxy(
                gateway.host, gateway.port,
                ChaosPlan(reset_rate=0.05, seed=3),
            ).start()
            control = ServiceClient(gateway.host, gateway.port)
            await control.connect()
            chaotic = ServiceClient(
                proxy.host, proxy.port,
                timeout_s=2.0,
                retry=RetryPolicy(attempts=8, base_delay_s=0.005),
            )
            try:
                keys = await control.enroll("lossy")
                items = []
                expected = []
                for i in range(20):
                    message = b"m%d" % i
                    good = i % 4 != 0
                    signature = control.sign(
                        message if good else b"forged", keys
                    )
                    items.append(("lossy", keys.public_key, message, signature))
                    expected.append(good)
                outcomes = await chaotic.verify_many(items)
                assert all(o.ok for o in outcomes)
                assert [o.valid for o in outcomes] == expected
                # The wire really was lossy and the client really healed.
                assert proxy.counters["resets"] >= 1
                assert chaotic.counters["reconnects"] >= 1
            finally:
                await chaotic.close()
                await control.close()
                await proxy.stop()
                await gateway.stop()

        asyncio.run(main())
