"""Mobility model tests (random waypoint + static)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netsim.mobility import RandomWaypoint, StaticPosition, distance


class TestStatic:
    def test_never_moves(self):
        model = StaticPosition((10.0, 20.0))
        assert model.position(0.0) == (10.0, 20.0)
        assert model.position(1e6) == (10.0, 20.0)


class TestRandomWaypoint:
    def make(self, speed=10.0, pause=0.0, seed=1, w=1500.0, h=300.0):
        return RandomWaypoint(w, h, speed, random.Random(seed), pause_time=pause)

    def test_positions_stay_in_area(self):
        model = self.make()
        for t in range(0, 2000, 7):
            x, y = model.position(float(t))
            assert 0.0 <= x <= 1500.0
            assert 0.0 <= y <= 300.0

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_in_bounds_property(self, speed, t_ms):
        model = self.make(speed=float(speed), seed=speed)
        x, y = model.position(t_ms / 1000.0)
        assert 0.0 <= x <= 1500.0
        assert 0.0 <= y <= 300.0

    def test_zero_speed_is_static(self):
        model = self.make(speed=0.0)
        p0 = model.position(0.0)
        assert model.position(100.0) == p0

    def test_speed_bound_respected(self):
        model = self.make(speed=20.0)
        previous = model.position(0.0)
        for step in range(1, 500):
            t = step * 0.5
            current = model.position(t)
            assert distance(previous, current) <= 20.0 * 0.5 + 1e-6
            previous = current

    def test_movement_actually_happens(self):
        model = self.make(speed=10.0)
        p0 = model.position(0.0)
        p1 = model.position(60.0)
        assert distance(p0, p1) > 0.0

    def test_monotonic_queries_enforced(self):
        model = self.make()
        model.position(10.0)
        with pytest.raises(SimulationError):
            model.position(5.0)

    def test_pause_time(self):
        model = RandomWaypoint(
            100.0, 100.0, 50.0, random.Random(3), pause_time=5.0
        )
        # Find a moment where the node pauses: sample densely and look for
        # a window where the position repeats.
        positions = [model.position(t / 10.0) for t in range(0, 600)]
        repeats = sum(
            1 for a, b in zip(positions, positions[1:]) if a == b
        )
        assert repeats > 0  # pauses exist

    def test_deterministic_with_seed(self):
        a = self.make(seed=99)
        b = self.make(seed=99)
        for t in (0.0, 1.5, 30.0, 31.0):
            assert a.position(t) == b.position(t)

    def test_invalid_area(self):
        with pytest.raises(SimulationError):
            RandomWaypoint(0.0, 100.0, 5.0, random.Random(1))

    def test_negative_speed(self):
        with pytest.raises(SimulationError):
            RandomWaypoint(10.0, 10.0, -1.0, random.Random(1))

    def test_start_position_honoured(self):
        model = RandomWaypoint(
            100.0, 100.0, 0.0, random.Random(1), start=(5.0, 6.0)
        )
        assert model.position(0.0) == (5.0, 6.0)


class TestDistance:
    def test_euclidean(self):
        assert distance((0, 0), (3, 4)) == 5.0

    def test_zero(self):
        assert distance((7, 7), (7, 7)) == 0.0
