"""Parallel campaign execution: determinism, fallback, snapshot merging.

The contract is strict: ``workers=N`` must produce byte-identical
summaries to the serial path (runs are independently seeded, aggregation
walks seeds in order), and a broken worker pool degrades to in-process
execution instead of losing samples.
"""

import pytest

from repro import obs
from repro.netsim import campaign as campaign_mod
from repro.netsim.campaign import CampaignConfig, run_campaign
from repro.netsim.scenario import ScenarioConfig

FAST = dict(sim_time_s=15.0, n_flows=3, n_nodes=14)


def result_bytes(result):
    """Everything user-visible about a campaign result, as one string."""
    metrics = {
        key: (s.mean, s.std, s.ci_low, s.ci_high, s.samples)
        for key, s in sorted(result.metrics.items())
    }
    return "\n".join(
        [result.summary_line(), result.table_text(), repr(metrics)]
    )


class TestDeterminism:
    def test_workers_do_not_change_the_result(self):
        config = ScenarioConfig(**FAST)
        serial = run_campaign(config, seeds=[1, 2, 3, 4])
        parallel = run_campaign(config, seeds=[1, 2, 3, 4], workers=4)
        assert result_bytes(serial) == result_bytes(parallel)
        assert serial.metrics == parallel.metrics
        assert serial.fault_counts == parallel.fault_counts

    def test_campaign_config_form(self):
        scenario = ScenarioConfig(**FAST)
        via_config = run_campaign(
            CampaignConfig(scenario=scenario, seeds=(1, 2), workers=2)
        )
        classic = run_campaign(scenario, seeds=[1, 2])
        assert result_bytes(via_config) == result_bytes(classic)


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(ScenarioConfig(**FAST), seeds=[1], workers=0)

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            run_campaign(ScenarioConfig(**FAST), seeds=[1, 1])

    def test_confidence_bounds(self):
        with pytest.raises(ValueError, match="confidence"):
            CampaignConfig(
                scenario=ScenarioConfig(**FAST), seeds=(1,), confidence=1.0
            ).validate()

    def test_config_plus_seeds_rejected(self):
        config = CampaignConfig(scenario=ScenarioConfig(**FAST), seeds=(1,))
        with pytest.raises(TypeError):
            run_campaign(config, seeds=[1])


class _DyingFuture:
    def result(self):
        raise RuntimeError("worker process died")


class _FlakyPool:
    """An executor whose every future reports a dead worker."""

    def __init__(self, max_workers):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args):
        return _DyingFuture()


class _UnbuildablePool:
    """An executor that cannot even start (e.g. fork failure)."""

    def __init__(self, max_workers):
        raise OSError("cannot fork")


class TestGracefulDegradation:
    @pytest.mark.parametrize("pool", [_FlakyPool, _UnbuildablePool])
    def test_broken_pool_falls_back_to_serial(self, monkeypatch, pool):
        serial = run_campaign(ScenarioConfig(**FAST), seeds=[1, 2])
        monkeypatch.setattr(campaign_mod, "ProcessPoolExecutor", pool)
        degraded = run_campaign(ScenarioConfig(**FAST), seeds=[1, 2], workers=2)
        assert result_bytes(degraded) == result_bytes(serial)
        assert degraded.completed_seeds == [1, 2]

    def test_fallback_respects_monkeypatched_run_scenario(self, monkeypatch):
        calls = []
        real = campaign_mod.run_scenario

        def spy(config):
            calls.append(config.seed)
            return real(config)

        monkeypatch.setattr(campaign_mod, "run_scenario", spy)
        monkeypatch.setattr(campaign_mod, "ProcessPoolExecutor", _FlakyPool)
        run_campaign(ScenarioConfig(**FAST), seeds=[3, 4], workers=2)
        assert calls == [3, 4]


class TestSnapshotMerge:
    def test_merge_counters_timers_histograms_ops(self):
        with obs.collecting() as source:
            source.counter("hits", phase="sign").inc(3)
            source.counter("plain").inc(2)
            source.timer("span", phase="sign").observe(1.5)
            source.histogram("delay").observe(2.0)
            source.histogram("delay").observe(6.0)
            source.field_ops.fp_mul += 7
            snapshot = source.snapshot()
        with obs.collecting() as target:
            target.counter("hits", phase="sign").inc(1)
            target.histogram("delay").observe(10.0)
            target.merge_snapshot(snapshot)
            target.merge_snapshot(snapshot)
        assert target.counter_value("hits", phase="sign") == 7
        assert target.counter_value("plain") == 4
        timer = target.timer("span", phase="sign")
        assert timer.count == 2 and timer.total_s == pytest.approx(3.0)
        histogram = target.histogram("delay")
        assert histogram.count == 5
        assert histogram.min == 2.0 and histogram.max == 10.0
        assert target.field_ops.fp_mul == 14

    def test_null_registry_discards(self):
        with obs.collecting() as source:
            source.counter("x").inc()
            snapshot = source.snapshot()
        obs.NULL_REGISTRY.merge_snapshot(snapshot)
        assert obs.NULL_REGISTRY.counter_value("x") == 0

    def test_parallel_campaign_merges_worker_instrumentation(self):
        config = ScenarioConfig(protocol="mccls", **FAST)
        # Warm process-wide caches (curve derivation, hash constants)
        # outside instrumentation so both blocks see only per-run ops.
        run_campaign(config, seeds=[1])
        with obs.collecting() as serial_registry:
            run_campaign(config, seeds=[1, 2])
        with obs.collecting() as parallel_registry:
            run_campaign(config, seeds=[1, 2], workers=2)
        serial_snap = serial_registry.snapshot()
        parallel_snap = parallel_registry.snapshot()
        assert serial_snap["counters"] == parallel_snap["counters"]
        assert serial_snap["ops"] == parallel_snap["ops"]
        # The runs model crypto ops, so the merge must carry real content.
        assert serial_snap["counters"].get("crypto.verify{scheme=mccls}", 0) > 0
