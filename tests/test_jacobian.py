"""Jacobian scalar-multiplication edge cases (beyond the generic group-law
properties already covered in test_curve.py)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pairing.bn import toy_curve
from repro.pairing.curve import _jacobian_scalar_mult

CURVE = toy_curve(32)


def affine_mult(point, k):
    result = point.curve.infinity()
    addend = point
    while k:
        if k & 1:
            result = result + addend
        addend = addend.double()
        k >>= 1
    return result


class TestAgainstAffine:
    @given(st.integers(min_value=8, max_value=2**64))
    @settings(max_examples=40)
    def test_matches_affine_g1(self, k):
        assert CURVE.g1 * k == affine_mult(CURVE.g1, k)

    @given(st.integers(min_value=8, max_value=2**64))
    @settings(max_examples=20)
    def test_matches_affine_g2(self, k):
        assert CURVE.g2 * k == affine_mult(CURVE.g2, k)

    def test_small_scalars_use_affine_path(self):
        for k in range(8):
            assert CURVE.g1 * k == affine_mult(CURVE.g1, k)

    def test_scalar_crossing_order(self):
        for k in (CURVE.n - 1, CURVE.n, CURVE.n + 1, 2 * CURVE.n + 17):
            assert CURVE.g1 * k == CURVE.g1 * (k % CURVE.n)


class TestCancellation:
    def test_order_multiple_is_infinity(self):
        assert (CURVE.g1 * (8 * CURVE.n)).is_infinity()

    def test_direct_jacobian_call(self):
        assert _jacobian_scalar_mult(CURVE.g1, CURVE.n).is_infinity()

    def test_sum_through_infinity(self):
        """Scalars whose binary expansion forces an intermediate p + (-p)
        cancellation inside the ladder."""
        rng = random.Random(11)
        for _ in range(10):
            k = CURVE.n - rng.randrange(1, 64)
            expected = -(CURVE.g1 * (CURVE.n - k))
            assert CURVE.g1 * k == expected

    def test_random_points_not_just_generators(self):
        point = CURVE.g1 * 31337
        assert point * 1000003 == affine_mult(point, 1000003)
