"""ECLS: the pairing-free certificateless signature scheme.

Covers the construction's own algebra (partial-key binding, sign/verify,
tamper rejection), its zero-pairing claim via the op meter, registry
integration, and the deliberately weakened variants' advertised bugs.
"""

from __future__ import annotations

import random

import pytest

from repro.pairing.groups import PairingContext
from repro.schemes.ecls import (
    ECLSScheme,
    ECLSSignature,
    WeakECLSNoUserSecret,
    WeakECLSUnboundKey,
    signature_size_bytes,
)
from repro.schemes.registry import all_scheme_names, create_scheme

MSG = b"route-reply seq=41 hops=3"


@pytest.fixture()
def scheme(ctx) -> ECLSScheme:
    return ECLSScheme(ctx)


@pytest.fixture()
def keys(scheme):
    return scheme.generate_user_keys("alice@manet")


class TestECLSRoundTrip:
    def test_sign_verify(self, scheme, keys):
        sig = scheme.sign(MSG, keys)
        assert scheme.verify(
            MSG, sig, keys.identity, keys.public_key, keys.public_key_extra
        )

    def test_partial_key_publicly_checkable(self, scheme, keys):
        assert scheme.partial_key_is_valid(keys.partial)

    def test_tampered_partial_key_rejected(self, scheme, keys):
        from repro.schemes.ecls import ECLSPartialKey

        bad = ECLSPartialKey(
            identity=keys.partial.identity,
            r_pub=keys.partial.r_pub,
            d=(keys.partial.d + 1) % scheme.ctx.order,
        )
        assert not scheme.partial_key_is_valid(bad)

    def test_wrong_message_rejected(self, scheme, keys):
        sig = scheme.sign(MSG, keys)
        assert not scheme.verify(
            b"other", sig, keys.identity, keys.public_key, keys.public_key_extra
        )

    def test_wrong_identity_rejected(self, scheme, keys):
        sig = scheme.sign(MSG, keys)
        assert not scheme.verify(
            MSG, sig, "mallory@manet", keys.public_key, keys.public_key_extra
        )

    def test_tampered_signature_rejected(self, scheme, keys):
        sig = scheme.sign(MSG, keys)
        bad = ECLSSignature(t_pub=sig.t_pub, z=(sig.z + 1) % scheme.ctx.order)
        assert not scheme.verify(
            MSG, bad, keys.identity, keys.public_key, keys.public_key_extra
        )

    def test_swapped_public_key_rejected(self, scheme, keys):
        other = scheme.generate_user_keys("bob@manet")
        sig = scheme.sign(MSG, keys)
        assert not scheme.verify(
            MSG, sig, keys.identity, other.public_key, other.public_key_extra
        )

    def test_missing_extra_point_rejected(self, scheme, keys):
        sig = scheme.sign(MSG, keys)
        assert not scheme.verify(MSG, sig, keys.identity, keys.public_key, None)

    def test_garbage_signature_object_rejected(self, scheme, keys):
        assert not scheme.verify(
            MSG, object(), keys.identity, keys.public_key, keys.public_key_extra
        )

    def test_z_out_of_range_rejected(self, scheme, keys):
        sig = scheme.sign(MSG, keys)
        assert not scheme.verify(
            MSG,
            ECLSSignature(t_pub=sig.t_pub, z=0),
            keys.identity,
            keys.public_key,
            keys.public_key_extra,
        )
        assert not scheme.verify(
            MSG,
            ECLSSignature(t_pub=sig.t_pub, z=scheme.ctx.order),
            keys.identity,
            keys.public_key,
            keys.public_key_extra,
        )


class TestZeroPairings:
    def test_whole_lifecycle_never_pairs(self, ctx):
        scheme = ECLSScheme(ctx)
        with ctx.measure() as meter:
            keys = scheme.generate_user_keys("meter@manet")
            sig = scheme.sign(MSG, keys)
            assert scheme.verify(
                MSG, sig, keys.identity, keys.public_key, keys.public_key_extra
            )
        assert meter.delta.pairings == 0

    def test_profiles_advertise_zero_pairings(self):
        assert ECLSScheme.paper_sign_profile[0] == 0
        assert ECLSScheme.paper_verify_profile[0] == 0


class TestRekey:
    def test_rotation_kills_issued_keys(self, scheme, keys):
        sig = scheme.sign(MSG, keys)
        scheme.rotate_master_secret(None)
        # H1 binds P_pub: the old signature no longer verifies and the
        # old partial key no longer validates
        assert not scheme.verify(
            MSG, sig, keys.identity, keys.public_key, keys.public_key_extra
        )
        assert not scheme.partial_key_is_valid(keys.partial)
        fresh = scheme.generate_user_keys(keys.identity)
        sig2 = scheme.sign(MSG, fresh)
        assert scheme.verify(
            MSG, sig2, fresh.identity, fresh.public_key, fresh.public_key_extra
        )


class TestRegistry:
    def test_ecls_is_registered(self, curve48):
        assert "ecls" in all_scheme_names()
        scheme = create_scheme("ecls", PairingContext(curve48))
        assert isinstance(scheme, ECLSScheme)

    def test_weak_variants_not_registered(self):
        names = all_scheme_names()
        assert "ecls-weak-unbound" not in names
        assert "ecls-weak-nouser" not in names


class TestWeakVariants:
    """The weakened schemes still round-trip honestly; the games prove
    their attacks elsewhere (tests/test_games.py)."""

    @pytest.mark.parametrize(
        "cls", [WeakECLSUnboundKey, WeakECLSNoUserSecret]
    )
    def test_honest_round_trip(self, ctx, cls):
        scheme = cls(ctx)
        keys = scheme.generate_user_keys("weak@manet")
        sig = scheme.sign(MSG, keys)
        assert scheme.verify(
            MSG, sig, keys.identity, keys.public_key, keys.public_key_extra
        )

    def test_unbound_hash_ignores_public_key(self, ctx, rng):
        scheme = WeakECLSUnboundKey(ctx)
        keys = scheme.generate_user_keys("weak@manet")
        sig = scheme.sign(MSG, keys)
        t_pub = sig.t_pub
        a = scheme._h2(MSG, keys.identity, t_pub, keys.public_key, None)
        b = scheme._h2(MSG, keys.identity, t_pub, None, None)
        assert a == b  # the bug under test


def test_signature_size_accounts_point_and_scalar(curve48):
    fp = (curve48.p.bit_length() + 7) // 8
    n = (curve48.n.bit_length() + 7) // 8
    assert signature_size_bytes(curve48) == 1 + 2 * fp + n


def test_deterministic_under_seeded_ctx(curve48):
    def lifecycle(seed):
        ctx = PairingContext(curve48, random.Random(seed))
        scheme = ECLSScheme(ctx)
        keys = scheme.generate_user_keys("det@manet")
        sig = scheme.sign(MSG, keys)
        return (keys.secret_value, keys.partial.d, sig.z)

    assert lifecycle(77) == lifecycle(77)
    assert lifecycle(77) != lifecycle(78)
