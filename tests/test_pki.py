"""PKI baseline tests: ECDSA and the certificate authority machinery."""

import dataclasses
import random

import pytest

from repro.errors import CertificateError, SignatureError
from repro.pairing.bn import toy_curve
from repro.pki.ca import (
    CertificateAuthority,
    enroll_identity,
    verify_chain,
)
from repro.pki.ecdsa import (
    ECDSA,
    ECDSASignature,
    decode_signature,
    encode_signature,
    signature_size_bytes,
)

CURVE = toy_curve(32)


@pytest.fixture()
def ecdsa():
    return ECDSA(CURVE, random.Random(21))


class TestECDSA:
    def test_sign_verify(self, ecdsa):
        keys = ecdsa.generate_keys()
        sig = ecdsa.sign(b"payload", keys)
        assert ecdsa.verify(b"payload", sig, None, keys.public_key)

    def test_reject_wrong_message(self, ecdsa):
        keys = ecdsa.generate_keys()
        sig = ecdsa.sign(b"payload", keys)
        assert not ecdsa.verify(b"other", sig, None, keys.public_key)

    def test_reject_wrong_key(self, ecdsa):
        keys = ecdsa.generate_keys()
        other = ecdsa.generate_keys()
        sig = ecdsa.sign(b"payload", keys)
        assert not ecdsa.verify(b"payload", sig, None, other.public_key)

    def test_tampered_signature(self, ecdsa):
        keys = ecdsa.generate_keys()
        sig = ecdsa.sign(b"payload", keys)
        bad = dataclasses.replace(sig, s=(sig.s + 1) % CURVE.n)
        assert not ecdsa.verify(b"payload", bad, None, keys.public_key)

    def test_range_checks(self, ecdsa):
        keys = ecdsa.generate_keys()
        assert not ecdsa.verify(b"m", ECDSASignature(0, 1), None, keys.public_key)
        assert not ecdsa.verify(b"m", ECDSASignature(1, 0), None, keys.public_key)
        assert not ecdsa.verify(
            b"m", ECDSASignature(CURVE.n, 1), None, keys.public_key
        )

    def test_infinity_key_rejected(self, ecdsa):
        keys = ecdsa.generate_keys()
        sig = ecdsa.sign(b"m", keys)
        assert not ecdsa.verify(b"m", sig, None, CURVE.g1_curve.infinity())

    def test_deterministic_keys(self):
        a = ECDSA(CURVE).generate_keys(secret=777)
        b = ECDSA(CURVE).generate_keys(secret=777)
        assert a.public_key == b.public_key

    def test_wrong_type_raises(self, ecdsa):
        keys = ecdsa.generate_keys()
        with pytest.raises(SignatureError):
            ecdsa.verify(b"m", "sig", None, keys.public_key)

    def test_many_messages(self, ecdsa):
        keys = ecdsa.generate_keys()
        for i in range(10):
            msg = f"packet {i}".encode()
            assert ecdsa.verify(msg, ecdsa.sign(msg, keys), None, keys.public_key)

    def test_signature_serialization(self, ecdsa):
        keys = ecdsa.generate_keys()
        sig = ecdsa.sign(b"m", keys)
        blob = encode_signature(CURVE, sig)
        assert len(blob) == signature_size_bytes(CURVE)
        decoded, rest = decode_signature(CURVE, blob + b"tail")
        assert decoded == sig
        assert rest == b"tail"

    def test_truncated_signature(self):
        with pytest.raises(SignatureError):
            decode_signature(CURVE, b"\x01")


class TestCertificateAuthority:
    def test_issue_and_check(self):
        ca = CertificateAuthority("root", CURVE, seed=1)
        ident = enroll_identity("alice", ca, seed=2)
        ca.check_certificate(ident.certificate)

    def test_forged_certificate_rejected(self):
        ca = CertificateAuthority("root", CURVE, seed=1)
        ident = enroll_identity("alice", ca, seed=2)
        forged = dataclasses.replace(ident.certificate, subject="mallory")
        with pytest.raises(CertificateError):
            ca.check_certificate(forged)

    def test_revocation(self):
        ca = CertificateAuthority("root", CURVE, seed=1)
        ident = enroll_identity("alice", ca, seed=2)
        ca.revoke(ident.certificate.serial)
        with pytest.raises(CertificateError):
            ca.check_certificate(ident.certificate)
        assert ident.certificate.serial in ca.crl()

    def test_revoke_unknown_serial(self):
        ca = CertificateAuthority("root", CURVE, seed=1)
        with pytest.raises(CertificateError):
            ca.revoke(999)

    def test_expiry(self):
        ca = CertificateAuthority("root", CURVE, seed=1, validity_seconds=10)
        ident = enroll_identity("alice", ca, now=100.0, seed=2)
        ca.check_certificate(ident.certificate, now=105.0)
        with pytest.raises(CertificateError):
            ca.check_certificate(ident.certificate, now=111.0)
        with pytest.raises(CertificateError):
            ca.check_certificate(ident.certificate, now=99.0)

    def test_wrong_issuer(self):
        ca_a = CertificateAuthority("ca-a", CURVE, seed=1)
        ca_b = CertificateAuthority("ca-b", CURVE, seed=2)
        ident = enroll_identity("alice", ca_a, seed=3)
        with pytest.raises(CertificateError):
            ca_b.check_certificate(ident.certificate)


class TestChains:
    def test_two_level_chain(self):
        root = CertificateAuthority("root", CURVE, seed=1)
        sub = CertificateAuthority("sub", CURVE, parent=root, seed=2)
        ident = enroll_identity("alice", sub, seed=3)
        assert len(ident.chain) == 2
        verify_chain(
            ident.chain, {"root": root, "sub": sub}
        )

    def test_unknown_issuer_in_chain(self):
        root = CertificateAuthority("root", CURVE, seed=1)
        ident = enroll_identity("alice", root, seed=2)
        with pytest.raises(CertificateError):
            verify_chain(ident.chain, {})

    def test_empty_chain(self):
        with pytest.raises(CertificateError):
            verify_chain([], {})

    def test_broken_chain_contiguity(self):
        root = CertificateAuthority("root", CURVE, seed=1)
        sub = CertificateAuthority("sub", CURVE, parent=root, seed=2)
        alice = enroll_identity("alice", sub, seed=3)
        unrelated = root.issue("someone-else", CURVE.g1 * 5)
        with pytest.raises(CertificateError):
            verify_chain(
                [alice.certificate, unrelated],
                {"root": root, "sub": sub},
            )

    def test_revoked_intermediate(self):
        root = CertificateAuthority("root", CURVE, seed=1)
        sub = CertificateAuthority("sub", CURVE, parent=root, seed=2)
        ident = enroll_identity("alice", sub, seed=3)
        root.revoke(sub.certificate.serial)
        with pytest.raises(CertificateError):
            verify_chain(ident.chain, {"root": root, "sub": sub})
