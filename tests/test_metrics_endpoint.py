"""STATS reply shape and METRICS Prometheus exposition output."""

import asyncio
import random
import re

import pytest

from repro.core.mccls import McCLS
from repro.obs import ListEventSink
from repro.obs.exposition import (
    PrometheusRenderer,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.service.client import ServiceClient
from repro.service.server import STATS_SCHEMA_VERSION, VerificationGateway

CURVE_BITS = 32

#: one Prometheus sample line: name{labels} value
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>[-+0-9.eEinfna]+)$"
)


def run(coro_factory, **gateway_kwargs):
    async def main():
        gateway = VerificationGateway(
            curve=toy_curve(CURVE_BITS), seed=5, port=0, **gateway_kwargs
        )
        await gateway.start()
        try:
            return await coro_factory(gateway)
        finally:
            await gateway.stop()

    return asyncio.run(main())


async def drive_traffic(gateway, requests=3):
    client = await ServiceClient(gateway.host, gateway.port).connect()
    keys = await client.enroll("metrics@manet")
    for i in range(requests):
        message = b"m%d" % i
        signature = client.sign(message, keys)
        assert await client.verify(
            "metrics@manet", keys.public_key, message, signature, trace_id=i + 1
        )
    return client


def parse_exposition(text):
    """Parse exposition text into {key: value} + the declared TYPE lines."""
    samples, types = {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        key = match.group("name")
        if match.group("labels"):
            key += "{" + match.group("labels") + "}"
        samples[key] = float(match.group("value"))
    return samples, types


class TestStatsShape:
    def test_stats_document_schema(self):
        async def body(gateway):
            client = await drive_traffic(gateway)
            stats = await client.stats()
            await client.close()
            return stats

        stats = run(body)
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert stats["counters"]["verify_requests"] == 3
        assert stats["counters"]["traced_requests"] == 3
        assert stats["queue_depth"] == 0
        assert stats["queue_size"] > 0
        # every stage summary carries counts and the quantile ladder
        for stage in ("request", "queue_wait", "verify", "serialize"):
            summary = stats["latency_ms"][stage]
            assert summary["count"] >= 1
            for key in ("p50", "p90", "p95", "p99", "min", "max", "mean"):
                assert isinstance(summary[key], float), (stage, key)
            assert summary["min"] <= summary["p50"] <= summary["max"]
        assert stats["batch"]["size"]["count"] >= 1
        assert set(stats["cache"]) == {
            "pairing",
            "miller",
            "fixed_bases",
            "hash_g2",
        }

    def test_stats_survives_json_round_trip_unchanged(self):
        import json

        async def body(gateway):
            client = await drive_traffic(gateway)
            stats = await client.stats()
            await client.close()
            return stats

        stats = run(body)
        assert json.loads(json.dumps(stats)) == stats


class TestMetricsExposition:
    def test_metrics_opcode_returns_parseable_exposition(self):
        async def body(gateway):
            client = await drive_traffic(gateway)
            text = await client.metrics()
            await client.close()
            return text

        text = run(body)
        assert text.endswith("\n")
        samples, types = parse_exposition(text)
        # stable counter names with the _total convention
        assert samples["repro_service_verify_requests_total"] == 3.0
        assert samples["repro_service_requests_total"] >= 4.0
        assert types["repro_service_verify_requests_total"] == "counter"
        # per-stage summaries carry quantile labels
        for stage in ("request", "queue_wait", "verify", "serialize"):
            key = f'repro_service_stage_ms{{quantile="0.5",stage="{stage}"}}'
            assert key in samples, sorted(samples)[:20]
            assert samples[f'repro_service_stage_ms_count{{stage="{stage}"}}'] >= 1
        assert types["repro_service_stage_ms"] == "summary"
        # gauges and cache families
        assert samples["repro_service_queue_depth"] == 0.0
        assert types["repro_service_queue_depth"] == "gauge"
        assert 'repro_cache_hits_total{cache="fixed_bases"}' in samples
        assert samples["repro_service_enrolled"] == 1.0

    def test_metric_names_are_prometheus_legal(self):
        async def body(gateway):
            client = await drive_traffic(gateway)
            text = await client.metrics()
            await client.close()
            return text

        text = run(body)
        legal = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert legal.match(name), name


class TestTopDashboard:
    def test_poll_rates_from_counter_deltas(self):
        from repro.service.top import poll_rates

        previous = {"counters": {"requests": 100, "verify_requests": 80}}
        current = {"counters": {"requests": 150, "verify_requests": 100}}
        rates = poll_rates(previous, current, 2.0)
        assert rates["requests"] == pytest.approx(25.0)
        assert rates["verifies"] == pytest.approx(10.0)
        assert poll_rates(None, current, 2.0) == {
            "requests": 0.0,
            "verifies": 0.0,
        }

    def test_render_dashboard_from_live_stats(self):
        from repro.service.top import poll_rates, render_dashboard

        async def body(gateway):
            client = await drive_traffic(gateway)
            stats = await client.stats()
            await client.close()
            return stats

        stats = run(body)
        lines = render_dashboard(
            stats, poll_rates(None, stats, 2.0), target="host:1"
        )
        text = "\n".join(lines)
        assert "repro top - gateway host:1" in text
        assert "req/s" in text
        assert "p50" in text and "p99" in text
        assert "queue 0/" in text
        assert "cache" in text
        assert "enrolled  1" in text

    def test_poll_loop_iterations_bounded(self):
        import repro.service.top as top_mod

        async def body(gateway):
            outputs = []
            code = await top_mod._poll_loop(
                gateway.host,
                gateway.port,
                interval_s=0.01,
                iterations=2,
                clear=False,
                out=outputs.append,
            )
            return code, outputs

        code, outputs = run(body)
        assert code == 0
        assert len(outputs) == 2
        assert all(o.startswith("repro top") for o in outputs)


class TestRendererPrimitives:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("service.queue_wait_ms", "repro") == (
            "repro_service_queue_wait_ms"
        )
        assert sanitize_metric_name("weird métric!") == "weird_m_tric_"
        assert sanitize_metric_name("9lives").startswith("_")

    def test_label_values_escaped(self):
        assert escape_label_value('say "hi"\n\\') == 'say \\"hi\\"\\n\\\\'
        renderer = PrometheusRenderer()
        renderer.gauge("g", 1.0, {"path": 'a\\b"c"\nd'})
        rendered = renderer.render()
        assert 'path="a\\\\b\\"c\\"\\nd"' in rendered
        # one TYPE line, one sample, trailing newline
        assert rendered == (
            "# TYPE repro_g gauge\n"
            'repro_g{path="a\\\\b\\"c\\"\\nd"} 1.0\n'
        )

    def test_render_prometheus_convenience(self):
        text = render_prometheus(
            counters=[("hits", {"cache": "miller"}, 3)],
            gauges=[("depth", {}, 0)],
        )
        samples, types = parse_exposition(text)
        assert samples['repro_hits_total{cache="miller"}'] == 3.0
        assert samples["repro_depth"] == 0.0
        assert types["repro_hits_total"] == "counter"

    def test_families_sorted_and_grouped(self):
        renderer = PrometheusRenderer()
        renderer.gauge("b_metric", 2.0)
        renderer.gauge("a_metric", 1.0)
        renderer.gauge("b_metric", 3.0, {"x": "2"})
        lines = renderer.render().splitlines()
        assert lines[0].startswith("# TYPE repro_a_metric")
        # both b_metric samples sit under one TYPE header
        assert sum(1 for l in lines if l.startswith("# TYPE")) == 2
