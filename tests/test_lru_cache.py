"""The bounded pairing caches: LRU semantics, the 10k-identity memory
bound, and warm-verify correctness across evictions.

Regression tests for the serving-layer leak: ``PairingContext`` used to
memoise constant pairings in plain dicts that never evicted, so a verifier
facing an unbounded identity population grew without limit.  The caches
are now :class:`~repro.pairing.lru.LRUCache` instances - these tests pin
the bound, the eviction accounting, and the property that correctness
never depends on cache residency.
"""

import random

import pytest

from repro import obs
from repro.core.mccls import McCLS
from repro.pairing import groups as groups_module
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.pairing.lru import LRUCache

CURVE = toy_curve(32)


class TestLRUCache:
    def test_bound_and_eviction_order(self):
        cache = LRUCache(3)
        for i in range(5):
            cache[i] = i * 10
        assert len(cache) == 3
        assert cache.evictions == 2
        assert list(cache) == [2, 3, 4]  # 0 and 1 evicted first

    def test_get_freshens(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1  # "a" becomes most-recent
        cache["c"] = 3  # evicts "b", not "a"
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_hit_miss_and_peak_accounting(self):
        cache = LRUCache(4)
        cache["k"] = 1
        assert cache.get("k") == 1
        assert cache.get("absent") is None
        assert cache.get("absent", "fallback") == "fallback"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["peak_size"] == 1

    def test_on_evict_called_per_entry(self):
        calls = []
        cache = LRUCache(1, on_evict=lambda: calls.append(1))
        cache["a"] = 1
        cache["b"] = 2
        cache["c"] = 3
        assert len(calls) == 2

    def test_clear_is_not_an_eviction(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache.clear()
        assert len(cache) == 0
        assert cache.evictions == 0
        assert cache.peak_size == 1

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["a"] = 2
        assert len(cache) == 1
        assert cache.get("a") == 2
        assert cache.evictions == 0

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_ten_thousand_keys_stay_bounded(self):
        cache = LRUCache(64)
        for i in range(10_000):
            cache[i] = i
        assert len(cache) == 64
        assert cache.peak_size == 64
        assert cache.evictions == 10_000 - 64


class _FakeGT:
    """Stand-in Miller/GT value so cache-shape tests skip real pairings."""

    def inverse(self):
        return self

    def __mul__(self, other):
        return self

    def __pow__(self, exponent):
        return self

    def is_one(self):
        return True


class TestPairingContextBound:
    def test_cache_size_validated(self):
        with pytest.raises(ValueError):
            PairingContext(CURVE, cache_size=0)

    def test_10k_distinct_identities_stay_bounded(self, monkeypatch):
        """The satellite regression: 10k identities, memory stays at the
        configured bound and every overflow is counted as an eviction.

        The Miller loop and final exponentiation are stubbed (their values
        are irrelevant to cache shape), so the test covers 10k *distinct
        cache keys* through the real codh_check_cached path in well under
        a second.
        """
        monkeypatch.setattr(
            groups_module, "miller_loop", lambda curve, p, q: _FakeGT()
        )
        monkeypatch.setattr(
            groups_module,
            "final_exponentiation",
            lambda curve, raw: _FakeGT(),
        )
        bound = 256
        spec = CURVE.spec
        with obs.collecting() as registry:
            ctx = PairingContext(CURVE, random.Random(7), cache_size=bound)
            left, right = CURVE.g1, CURVE.g2
            for i in range(10_000):
                # Distinct affine coordinates = distinct cache keys; the
                # points never reach real arithmetic (stubbed above).
                base = CURVE.g1_curve.unsafe_point(
                    spec.fp(i + 1), spec.fp(i + 2)
                )
                assert ctx.codh_check_cached(left, right, base, right)
        assert len(ctx._miller_cache) == bound
        assert ctx._miller_cache.peak_size == bound
        assert ctx._miller_cache.evictions == 10_000 - bound
        assert registry.counter_total("pairing.cache_evictions") == (
            10_000 - bound
        )
        assert registry.counter_total("pairing.cache_misses") == 10_000

    def test_warm_verify_correct_across_evictions(self):
        """With cache_size=2 and 3 identities, every verify keeps
        succeeding while entries churn - correctness never depends on
        residency, only cost does."""
        with obs.collecting() as registry:
            ctx = PairingContext(CURVE, random.Random(11), cache_size=2)
            scheme = McCLS(ctx, precompute_s=True)
            users = [
                scheme.generate_user_keys(f"node-{i}@cps") for i in range(3)
            ]
            signed = [
                (keys, scheme.sign(f"msg-{i}".encode(), keys))
                for i, keys in enumerate(users)
            ]
            for _round in range(3):
                for i, (keys, sig) in enumerate(signed):
                    assert scheme.verify(
                        f"msg-{i}".encode(),
                        sig,
                        keys.identity,
                        keys.public_key,
                    )
            assert len(ctx._miller_cache) <= 2
        # 3 identities rotating through a 2-slot cache must evict.
        assert ctx._miller_cache.evictions > 0
        assert registry.counter_total("pairing.cache_evictions") > 0
        # Every verify after an eviction re-fills cold: misses > identities.
        assert ctx._miller_cache.misses > 3

    def test_warm_hit_after_refill(self):
        ctx = PairingContext(CURVE, random.Random(13), cache_size=8)
        scheme = McCLS(ctx)
        keys = scheme.generate_user_keys("warm@cps")
        sig = scheme.sign(b"m", keys)
        assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        before = ctx.ops.cached_pairing_hits
        assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
        assert ctx.ops.cached_pairing_hits == before + 1
