"""Attacker-node behaviour tests on controlled topologies."""

import pytest

from repro.netsim.attacks import (
    BlackHoleNode,
    CryptanalystBlackHoleNode,
    RushingNode,
)
from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.routing.secure_aodv import CryptoMaterial, McCLSAODVNode

SIG_BYTES = 226


class MixedNet:
    """Build a network mixing honest and attacker nodes."""

    def __init__(self, positions, attackers, secure=False, seed=4, **attacker_kwargs):
        self.sim = Simulator(seed=seed)
        self.metrics = MetricsCollector()
        self.radio = RadioMedium(
            self.sim, range_m=150.0, broadcast_jitter_s=0.002
        )
        self.nodes = {}
        for node_id, pos in positions.items():
            mobility = StaticPosition(pos)
            attacker_cls = attackers.get(node_id)
            if attacker_cls is not None:
                kwargs = dict(attacker_kwargs)
                if issubclass(attacker_cls, BlackHoleNode):
                    kwargs.setdefault("signature_bytes", SIG_BYTES if secure else 0)
                self.nodes[node_id] = attacker_cls(
                    node_id, self.sim, self.radio, mobility, self.metrics, **kwargs
                )
            elif secure:
                self.nodes[node_id] = McCLSAODVNode(
                    node_id,
                    self.sim,
                    self.radio,
                    mobility,
                    self.metrics,
                    material=CryptoMaterial(SIG_BYTES),
                )
            else:
                self.nodes[node_id] = AODVNode(
                    node_id, self.sim, self.radio, mobility, self.metrics
                )

    def send(self, source, destination, count=1):
        for seq in range(count):
            self.nodes[source].send_data(
                DataPacket(
                    flow_id=0,
                    seq=seq,
                    source=source,
                    destination=destination,
                    payload_bytes=128,
                    created_at=self.sim.now,
                )
            )

    def run(self, seconds=5.0):
        self.sim.run(until=self.sim.now + seconds)


def line(n, spacing=100.0):
    return {i: (i * spacing, 0.0) for i in range(n)}


class TestBlackHole:
    def topology(self):
        # 0 - 1 - 2 with the attacker (9) adjacent to the source.
        positions = dict(line(3))
        positions[9] = (50.0, 80.0)  # in range of 0 and 1
        return positions

    def test_aggressive_blackhole_absorbs_traffic(self):
        net = MixedNet(
            self.topology(), {9: BlackHoleNode}, fake_seq_boost=100
        )
        net.send(0, 2, count=10)
        net.run(10.0)
        assert net.metrics.dropped_by_attacker > 0
        assert net.metrics.fake_rreps_sent >= 1
        assert net.metrics.data_received < 10

    def test_tie_claim_blackhole_transient_only(self):
        net = MixedNet(self.topology(), {9: BlackHoleNode}, fake_seq_boost=0)
        net.send(0, 2, count=1)
        net.run(3.0)
        net.send(0, 2, count=10)
        net.run(10.0)
        # The genuine RREP (strictly fresher seq) displaces the fake route,
        # so steady-state traffic gets through.
        assert net.metrics.data_received >= 8

    def test_blackhole_respects_reply_radius(self):
        positions = dict(line(5))
        positions[9] = (400.0, 80.0)  # near node 4, far from source 0
        net = MixedNet(
            positions, {9: BlackHoleNode}, fake_seq_boost=100, reply_radius_hops=0
        )
        net.send(0, 2, count=5)
        net.run(10.0)
        # RREQs reach the attacker only after several hops > radius 0.
        assert net.metrics.fake_rreps_sent == 0

    def test_blackhole_rejected_by_secure_protocol(self):
        net = MixedNet(
            self.topology(), {9: BlackHoleNode}, secure=True, fake_seq_boost=100
        )
        net.send(0, 2, count=10)
        net.run(10.0)
        assert net.metrics.dropped_by_attacker == 0
        assert net.metrics.auth_rejected >= 1
        assert net.metrics.data_received == 10

    def test_blackhole_receives_own_traffic(self):
        net = MixedNet(self.topology(), {9: BlackHoleNode})
        net.send(0, 9, count=2)
        net.run(5.0)
        assert net.metrics.data_received == 2  # not "dropped by attacker"


class TestRushing:
    def topology(self):
        # Diamond with a rushing attacker on one branch.
        return {
            0: (0.0, 0.0),
            1: (100.0, 60.0),
            9: (100.0, -60.0),  # attacker
            2: (200.0, 0.0),
        }

    def test_rushing_wins_race_in_plain_aodv(self):
        net = MixedNet(self.topology(), {9: RushingNode})
        net.send(0, 2, count=10)
        net.run(10.0)
        assert net.metrics.dropped_by_attacker > 0

    def test_rushing_excluded_by_secure_protocol(self):
        net = MixedNet(self.topology(), {9: RushingNode}, secure=True)
        net.send(0, 2, count=10)
        net.run(10.0)
        assert net.metrics.dropped_by_attacker == 0
        assert net.metrics.data_received == 10

    def test_rushing_forwards_without_jitter(self):
        net = MixedNet(self.topology(), {9: RushingNode})
        attacker = net.nodes[9]
        assert attacker._rreq_forward_jitter() is False

    def test_rushed_copy_zeroes_hop_count(self):
        net = MixedNet(self.topology(), {9: RushingNode})
        captured = []
        original = AODVNode.receive

        def spy(self, frame):
            from repro.netsim.packets import RouteRequest

            if isinstance(frame.payload, RouteRequest) and frame.sender == 9:
                captured.append(frame.payload)
            original(self, frame)

        AODVNode.receive = spy
        try:
            net.send(0, 2)
            net.run(2.0)
        finally:
            AODVNode.receive = original
        assert captured
        assert all(rreq.hop_count == 0 for rreq in captured)


class TestCryptanalyst:
    def topology(self):
        positions = dict(line(3))
        positions[9] = (50.0, 80.0)
        return positions

    def test_defeats_secure_protocol(self):
        net = MixedNet(
            self.topology(),
            {9: CryptanalystBlackHoleNode},
            secure=True,
            fake_seq_boost=100,
        )
        net.send(0, 2, count=10)
        net.run(10.0)
        # The forged-but-valid signatures are accepted: packets die.
        assert net.metrics.dropped_by_attacker > 0

    def test_plain_blackhole_comparison(self):
        net = MixedNet(
            self.topology(), {9: BlackHoleNode}, secure=True, fake_seq_boost=100
        )
        net.send(0, 2, count=10)
        net.run(10.0)
        assert net.metrics.dropped_by_attacker == 0
