"""McCLS+ hardened-variant tests: the fix works, its limits are real."""

import random

import pytest

from repro.core.games import (
    MaliciousKGCForger,
    TamperAdversary,
    UniversalForgeryAttack,
    run_game,
)
from repro.core.hardened import KGCSignatureReplayForger, McCLSPlus, demo_hardening
from repro.core.mccls import McCLS
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext

CURVE = toy_curve(32)


def make_plus(seed=0x5AFE):
    return McCLSPlus(PairingContext(CURVE, random.Random(seed)))


class TestFunctionality:
    def test_sign_verify_still_works(self):
        scheme = make_plus()
        keys = scheme.generate_user_keys("alice")
        sig = scheme.sign(b"m", keys)
        assert scheme.verify(b"m", sig, keys.identity, keys.public_key)

    def test_rejections_preserved(self):
        scheme = make_plus()
        keys = scheme.generate_user_keys("alice")
        sig = scheme.sign(b"m", keys)
        assert not scheme.verify(b"x", sig, keys.identity, keys.public_key)
        assert not scheme.verify(b"m", sig, "bob", keys.public_key)

    def test_t_pub_structure(self):
        scheme = make_plus()
        s = scheme.master_secret
        assert scheme.t_pub == CURVE.g1 * ((s * s) % CURVE.n)

    def test_warm_verify_one_fresh_pairing(self):
        scheme = make_plus()
        keys = scheme.generate_user_keys("alice")
        sig = scheme.sign(b"m", keys)
        scheme.verify(b"m", sig, keys.identity, keys.public_key)  # warm caches
        _, ops = scheme.measure_verify(b"m", sig, keys)
        assert ops.pairings == 1  # binding constants are both cached

    def test_wrong_s_multiple_rejected(self):
        """The exact hole in plain McCLS: a scaled S must now fail."""
        import dataclasses

        scheme = make_plus()
        keys = scheme.generate_user_keys("alice")
        sig = scheme.sign(b"m", keys)
        # Compensate V/R cannot help: any S != (s/x) Q_ID dies in binding.
        scaled = dataclasses.replace(sig, s=sig.s * 2)
        assert not scheme.verify(b"m", scaled, keys.identity, keys.public_key)

    def test_infinity_public_key_rejected(self):
        scheme = make_plus()
        keys = scheme.generate_user_keys("alice")
        sig = scheme.sign(b"m", keys)
        assert not scheme.verify(
            b"m", sig, keys.identity, CURVE.g1_curve.infinity()
        )


class TestSecurityDelta:
    def test_universal_forgery_breaks_mccls_not_plus(self):
        mccls_result = run_game(
            McCLS(PairingContext(CURVE, random.Random(1))),
            UniversalForgeryAttack(random.Random(2)),
            trials=3,
        )
        plus_result = run_game(
            make_plus(),
            UniversalForgeryAttack(random.Random(2)),
            trials=3,
        )
        assert mccls_result.forgery_rate == 1.0
        assert plus_result.forgery_rate == 0.0

    def test_blind_kgc_forgery_breaks_mccls_not_plus(self):
        mccls_result = run_game(
            McCLS(PairingContext(CURVE, random.Random(1))),
            MaliciousKGCForger(random.Random(2)),
            trials=3,
        )
        plus_result = run_game(
            make_plus(), MaliciousKGCForger(random.Random(2)), trials=3
        )
        assert mccls_result.forgery_rate == 1.0
        assert plus_result.forgery_rate == 0.0

    def test_residual_kgc_replay_breaks_both(self):
        """The honest limit of the fix: a KGC with one observed signature
        still forges against McCLS+ (Type II not fully repaired)."""
        plus_result = run_game(
            make_plus(), KGCSignatureReplayForger(random.Random(2)), trials=3
        )
        assert plus_result.forgery_rate == 1.0

    def test_protocol_adversaries_still_fail(self):
        result = run_game(make_plus(), TamperAdversary(random.Random(3)), trials=2)
        assert result.forgeries == 0

    def test_demo_hardening_summary(self):
        results = demo_hardening(CURVE)
        assert results["universal"] == (1.0, 0.0)
        assert results["malicious-kgc"] == (1.0, 0.0)
        assert results["kgc-signature-replay"] == (1.0, 1.0)
        assert results["tamper"] == (0.0, 0.0)
        assert results["random"] == (0.0, 0.0)
