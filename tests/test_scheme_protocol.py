"""The unified scheme surface: one protocol, one construction path.

Every scheme the registry hands out - the Table 1 certificateless
schemes, the hardened variant, and the IBS/BLS/ECDSA baselines - must
drive through the same four calls: ``generate_user_keys``, ``sign``,
``verify(message, signature, identity, public_key)``.  The deprecation
shims keep the old positional-public-key ``verify`` calls working (with
a one-time warning) while call sites migrate.
"""

import random
import warnings

import pytest

from repro import compat
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.pki.ecdsa import ECDSA
from repro.schemes.base import SchemeProtocol
from repro.schemes.bls import BLSScheme
from repro.schemes.registry import all_scheme_names, create_scheme
from repro.schemes import registry as registry_mod

CURVE = toy_curve(32)


class NotAScheme:
    """Constructible but protocol-violating (for the TypeError path)."""

    def __init__(self, ctx):
        pass


@pytest.fixture(autouse=True)
def fresh_shim_state():
    compat.reset_deprecation_warnings()
    yield
    compat.reset_deprecation_warnings()


class TestRegistry:
    @pytest.mark.parametrize("name", all_scheme_names())
    def test_create_scheme_conforms_and_round_trips(self, name):
        ctx = PairingContext(CURVE, random.Random(42))
        scheme = create_scheme(name, ctx)
        assert isinstance(scheme, SchemeProtocol)
        assert scheme.name
        keys = scheme.generate_user_keys("alice@test")
        message = b"unified surface"
        signature = scheme.sign(message, keys)
        extra = getattr(keys, "public_key_extra", None)
        assert scheme.verify(
            message,
            signature,
            "alice@test",
            keys.public_key,
            public_key_extra=extra,
        )
        assert not scheme.verify(
            b"tampered",
            signature,
            "alice@test",
            keys.public_key,
            public_key_extra=extra,
        )

    def test_unknown_name_raises_key_error(self):
        ctx = PairingContext(CURVE)
        with pytest.raises(KeyError, match="unknown scheme"):
            create_scheme("rsa", ctx)

    def test_non_conforming_class_raises_type_error(self, monkeypatch):
        monkeypatch.setitem(
            registry_mod._BASELINE_PATHS,
            "bogus",
            "tests.test_scheme_protocol:NotAScheme",
        )
        with pytest.raises(TypeError, match="SchemeProtocol"):
            create_scheme("bogus", PairingContext(CURVE))


class TestDeprecationShims:
    def _signed(self, scheme_cls):
        if scheme_cls is ECDSA:
            scheme = ECDSA(CURVE, random.Random(7))
        else:
            scheme = scheme_cls(PairingContext(CURVE, random.Random(7)))
        keys = scheme.generate_user_keys("bob@test")
        return scheme, keys, scheme.sign(b"legacy call", keys)

    @pytest.mark.parametrize("scheme_cls", [ECDSA, BLSScheme])
    def test_positional_public_key_still_verifies(self, scheme_cls):
        scheme, keys, signature = self._signed(scheme_cls)
        with pytest.warns(DeprecationWarning, match="public_key"):
            assert scheme.verify(b"legacy call", signature, keys.public_key)

    @pytest.mark.parametrize("scheme_cls", [ECDSA, BLSScheme])
    def test_shim_warns_only_once(self, scheme_cls):
        scheme, keys, signature = self._signed(scheme_cls)
        with pytest.warns(DeprecationWarning):
            scheme.verify(b"legacy call", signature, keys.public_key)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert scheme.verify(b"legacy call", signature, keys.public_key)

    @pytest.mark.parametrize("scheme_cls", [ECDSA, BLSScheme])
    def test_new_call_shape_does_not_warn(self, scheme_cls):
        scheme, keys, signature = self._signed(scheme_cls)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert scheme.verify(
                b"legacy call", signature, "bob@test", keys.public_key
            )
