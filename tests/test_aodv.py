"""AODV protocol tests on small controlled topologies."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import (
    AODVNode,
    DISCOVERY_BACKOFF_CAP,
    RREQ_RETRIES,
)


class Net:
    """Static test network: positions 100m apart are neighbours (range 150)."""

    def __init__(self, positions, node_cls=AODVNode, seed=4, **node_kwargs):
        self.sim = Simulator(seed=seed)
        self.metrics = MetricsCollector()
        self.radio = RadioMedium(
            self.sim, range_m=150.0, broadcast_jitter_s=0.001
        )
        self.nodes = {
            node_id: node_cls(
                node_id,
                self.sim,
                self.radio,
                StaticPosition(pos),
                self.metrics,
                **node_kwargs,
            )
            for node_id, pos in positions.items()
        }

    def send(self, source, destination, count=1, payload=128):
        for seq in range(count):
            packet = DataPacket(
                flow_id=0,
                seq=seq,
                source=source,
                destination=destination,
                payload_bytes=payload,
                created_at=self.sim.now,
            )
            self.nodes[source].send_data(packet)

    def run(self, seconds=5.0):
        self.sim.run(until=self.sim.now + seconds)


def line(n, spacing=100.0):
    return {i: (i * spacing, 0.0) for i in range(n)}


class TestDiscoveryAndDelivery:
    def test_one_hop_delivery(self):
        net = Net(line(2))
        net.send(0, 1)
        net.run()
        assert net.metrics.data_received == 1

    def test_multi_hop_delivery(self):
        net = Net(line(5))
        net.send(0, 4)
        net.run()
        assert net.metrics.data_received == 1
        # Intermediate nodes forwarded the packet.
        assert net.metrics.data_forwarded == 3

    def test_route_reused_after_discovery(self):
        net = Net(line(4))
        net.send(0, 3)
        net.run(2.0)
        rreqs_after_first = net.metrics.rreq_initiated
        net.send(0, 3, count=5)
        net.run(2.0)
        assert net.metrics.data_received == 6
        assert net.metrics.rreq_initiated == rreqs_after_first  # no re-flood

    def test_buffered_packets_flushed(self):
        net = Net(line(4))
        net.send(0, 3, count=4)  # all queued before any route exists
        net.run()
        assert net.metrics.data_received == 4

    def test_bidirectional_traffic(self):
        net = Net(line(3))
        net.send(0, 2)
        net.run(2.0)
        net.send(2, 0)
        net.run(2.0)
        assert net.metrics.data_received == 2

    def test_reverse_route_installed_by_flood(self):
        net = Net(line(3))
        net.send(0, 2)
        net.run(1.0)  # within PATH_DISCOVERY_TIME, before reverse expiry
        # The destination learned a route back to the source.
        assert net.nodes[2].table.lookup(0, net.sim.now) is not None

    def test_delivery_delay_recorded(self):
        net = Net(line(3))
        net.send(0, 2)
        net.run()
        assert len(net.metrics.delays) == 1
        assert 0 < net.metrics.delays[0] < 1.0


class TestUnreachableDestinations:
    def test_discovery_fails_for_missing_node(self):
        net = Net(line(3))
        net.send(0, 99)  # no such node
        net.run(10.0)
        assert net.metrics.data_received == 0
        assert net.metrics.discovery_failures >= 1
        assert net.metrics.dropped_no_route >= 1

    def test_retries_with_expanding_ring(self):
        net = Net(line(3))
        net.send(0, 99)
        net.run(10.0)
        assert net.metrics.rreq_retried == RREQ_RETRIES

    def test_backoff_limits_rreq_storms(self):
        net = Net(line(3))
        # Keep sending to the unreachable destination for a while.
        for burst in range(30):
            net.send(0, 99)
            net.run(1.0)
        total_rreqs = net.metrics.rreq_initiated + net.metrics.rreq_retried
        # Without backoff this would be ~3 RREQs per failed discovery with a
        # discovery per packet; with backoff it is bounded by time/backoff.
        assert total_rreqs < 30
        assert DISCOVERY_BACKOFF_CAP > 0

    def test_partitioned_network(self):
        positions = dict(line(2))
        positions.update({10: (1000.0, 0.0), 11: (1100.0, 0.0)})
        net = Net(positions)
        net.send(0, 10)
        net.run(10.0)
        assert net.metrics.data_received == 0


class TestRouteMaintenance:
    def test_link_break_detected_and_rerouted(self):
        # 0-1-2 line plus alternate path 0-3-2 (3 placed off-axis in range).
        positions = {
            0: (0.0, 0.0),
            1: (100.0, 0.0),
            2: (200.0, 0.0),
            3: (100.0, 80.0),
        }
        net = Net(positions)
        net.send(0, 2)
        net.run(2.0)
        assert net.metrics.data_received == 1
        # Kill node 1 (drops off the radio): the route via 1 breaks.
        net.radio.detach(1)
        net.send(0, 2, count=3)
        net.run(10.0)
        # Eventually traffic flows again via node 3.
        assert net.metrics.data_received >= 2
        assert net.metrics.rerr_sent >= 0  # may or may not fire at source

    def test_duplicate_rreq_suppression(self):
        net = Net(line(4))
        net.send(0, 3)
        net.run()
        # Each intermediate node forwards the flood exactly once.
        assert net.metrics.rreq_forwarded <= 3


class TestIntermediateReply:
    def test_cached_route_answered_by_intermediate(self):
        net = Net(line(4))
        net.send(0, 3)
        net.run(2.0)
        rrep_before = net.metrics.rrep_sent
        # Node 1 now has a fresh route to 3; a new discovery from a newcomer
        # through node 1 can be answered from cache.  Force node 0 to forget
        # and rediscover: expire its route by advancing past the lifetime.
        net.run(7.0)
        net.send(0, 3)
        net.run(2.0)
        assert net.metrics.rrep_sent > rrep_before

    def test_intermediate_reply_disabled(self):
        net = Net(line(4), allow_intermediate_rrep=False)
        net.send(0, 3)
        net.run(2.0)
        assert net.metrics.data_received == 1


class TestSequenceNumbers:
    def test_seq_increments_on_discovery(self):
        net = Net(line(2))
        before = net.nodes[0].seq_no
        net.send(0, 1)
        net.run()
        assert net.nodes[0].seq_no > before

    def test_destination_seq_in_route(self):
        net = Net(line(3))
        net.send(0, 2)
        net.run()
        entry = net.nodes[0].table.lookup(2, net.sim.now)
        assert entry is not None
        assert entry.destination_seq >= 1
