"""Hostile-bytes fuzzing of the gateway protocol.

The service decoder must be *total*: truncated frames, oversized length
prefixes, garbage bodies and bit-corrupted signatures all end in a clean
ERR reply or a clean False verdict on a live server - never a crashed
connection, never an unhandled exception in the event loop.
"""

from __future__ import annotations

import asyncio
import random
import struct

import pytest

from repro.errors import SerializationError
from repro.pairing.bn import toy_curve
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import Opcode, Status
from repro.service.server import VerificationGateway

CURVE = toy_curve(32)
MSG = b"fuzz target message"


def gateway_test(coro_factory, **gateway_kwargs):
    async def main():
        gateway_kwargs.setdefault("curve", CURVE)
        gateway_kwargs.setdefault("seed", 9)
        gateway = VerificationGateway(**gateway_kwargs)
        await gateway.start()
        try:
            return await coro_factory(gateway)
        finally:
            await gateway.stop()

    return asyncio.run(main())


async def raw_connection(gateway):
    return await asyncio.open_connection(gateway.host, gateway.port)


async def read_reply(reader):
    header = await reader.readexactly(4)
    body = await reader.readexactly(protocol.frame_length(header))
    return protocol.decode_reply(body)


async def server_still_serves(gateway) -> bool:
    """A fresh connection gets a clean PING reply."""
    client = ServiceClient(gateway.host, gateway.port)
    await client.connect()
    try:
        return await client.ping()
    finally:
        await client.close()


class TestCodecTotality:
    """The sync codec never raises anything but SerializationError."""

    def test_random_bodies(self):
        rng = random.Random(0xF022)
        for _ in range(500):
            blob = rng.randbytes(rng.randrange(0, 64))
            for decoder in (protocol.decode_request, protocol.decode_reply):
                try:
                    decoder(blob)
                except SerializationError:
                    pass

    def test_random_verify_payloads(self):
        rng = random.Random(42)
        for _ in range(300):
            blob = rng.randbytes(rng.randrange(0, 160))
            try:
                protocol.decode_verify_payload(CURVE, blob)
            except SerializationError:
                pass

    def test_random_json_payloads(self):
        rng = random.Random(7)
        for _ in range(200):
            blob = rng.randbytes(rng.randrange(0, 40))
            try:
                protocol.decode_json_payload(blob)
            except SerializationError:
                pass

    def test_truncated_valid_payload_every_length(self):
        """Every prefix of a well-formed verify payload is rejected
        cleanly (no slice is accidentally decodable)."""
        import random as _random

        from repro.core.mccls import McCLS
        from repro.pairing.groups import PairingContext

        scheme = McCLS(PairingContext(CURVE, _random.Random(3)))
        keys = scheme.generate_user_keys("trunc")
        payload = protocol.encode_verify_payload(
            CURVE, "trunc", keys.public_key, MSG, scheme.sign(MSG, keys)
        )
        for cut in range(len(payload)):
            with pytest.raises(SerializationError):
                protocol.decode_verify_payload(CURVE, payload[:cut])


class TestHostileFrames:
    def test_truncated_header_then_server_alive(self):
        async def body(gateway):
            reader, writer = await raw_connection(gateway)
            writer.write(b"\x00\x00")  # half a length prefix, then vanish
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            assert await server_still_serves(gateway)

        gateway_test(body)

    def test_truncated_body_then_server_alive(self):
        async def body(gateway):
            reader, writer = await raw_connection(gateway)
            writer.write(struct.pack("!I", 100) + b"short")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            assert await server_still_serves(gateway)

        gateway_test(body)

    def test_oversized_length_prefix_gets_err_then_close(self):
        async def body(gateway):
            reader, writer = await raw_connection(gateway)
            writer.write(struct.pack("!I", protocol.MAX_FRAME + 1))
            await writer.drain()
            status, payload = await read_reply(reader)
            assert status == Status.ERR
            assert b"exceeds" in payload
            # Framing cannot re-sync after a refused body: connection is
            # closed by the server...
            assert await reader.read(1) == b""
            writer.close()
            await writer.wait_closed()
            # ...but the server itself keeps serving.
            assert await server_still_serves(gateway)

        gateway_test(body)

    def test_max_u32_length_prefix(self):
        async def body(gateway):
            reader, writer = await raw_connection(gateway)
            writer.write(struct.pack("!I", 0xFFFFFFFF))
            await writer.drain()
            status, _payload = await read_reply(reader)
            assert status == Status.ERR
            writer.close()
            await writer.wait_closed()
            assert await server_still_serves(gateway)

        gateway_test(body)

    def test_garbage_bodies_keep_connection_alive(self):
        """A stream of well-framed garbage gets one ERR each, in order,
        on a connection that still answers a valid request afterwards."""

        async def body(gateway):
            rng = random.Random(11)
            reader, writer = await raw_connection(gateway)
            count = 25
            for _ in range(count):
                writer.write(
                    protocol.encode_frame(rng.randbytes(rng.randrange(0, 48)))
                )
            writer.write(
                protocol.encode_frame(protocol.encode_request(Opcode.PING))
            )
            await writer.drain()
            statuses = []
            for _ in range(count + 1):
                status, _payload = await read_reply(reader)
                statuses.append(status)
            assert statuses[-1] == Status.OK  # the PING survived the storm
            assert all(s == Status.ERR for s in statuses[:-1])
            writer.close()
            await writer.wait_closed()

        gateway_test(body)

    def test_empty_body_and_unknown_opcode(self):
        async def body(gateway):
            reader, writer = await raw_connection(gateway)
            writer.write(protocol.encode_frame(b""))
            writer.write(protocol.encode_frame(bytes([123]) + b"payload"))
            writer.write(
                protocol.encode_frame(protocol.encode_request(Opcode.PING))
            )
            await writer.drain()
            first = await read_reply(reader)
            second = await read_reply(reader)
            third = await read_reply(reader)
            assert first[0] == Status.ERR
            assert second[0] == Status.ERR
            assert third[0] == Status.OK
            writer.close()
            await writer.wait_closed()

        gateway_test(body)


class TestCorruptedSignatures:
    def test_every_bit_flip_is_handled_cleanly(self):
        """Flip each byte of a valid verify request's signature region:
        the reply is OK(False) or ERR - never True, never a dead socket."""

        async def body(gateway):
            client = ServiceClient(gateway.host, gateway.port)
            await client.connect()
            try:
                keys = await client.enroll("victim")
                signature = client.sign(MSG, keys)
                payload = bytearray(
                    protocol.encode_verify_payload(
                        CURVE, "victim", keys.public_key, MSG, signature
                    )
                )
                from repro.core.serialization import mccls_signature_size

                sig_size = mccls_signature_size(CURVE)
                sig_start = len(payload) - sig_size
                rng = random.Random(99)

                # One connection, every corrupted request pipelined on it.
                flips = []
                for offset in range(sig_start, len(payload)):
                    bit = rng.randrange(8)
                    mutated = bytearray(payload)
                    mutated[offset] ^= 1 << bit
                    flips.append(bytes(mutated))
                for blob in flips:
                    client._writer.write(
                        protocol.encode_frame(
                            protocol.encode_request(Opcode.VERIFY, blob)
                        )
                    )
                await client._writer.drain()
                accepted = 0
                for _ in flips:
                    status, reply = await client._read_reply()
                    if status == Status.OK:
                        assert reply == b"\x00"  # must never verify
                    else:
                        assert status == Status.ERR
                        accepted += 1
                # The untouched original still verifies on the very same
                # connection: nothing crashed, nothing was poisoned.
                assert await client.verify(
                    "victim", keys.public_key, MSG, signature
                )
            finally:
                await client.close()

        gateway_test(body)

    def test_corrupted_public_key_and_identity_fields(self):
        async def body(gateway):
            client = ServiceClient(gateway.host, gateway.port)
            await client.connect()
            try:
                keys = await client.enroll("victim2")
                signature = client.sign(MSG, keys)
                payload = bytearray(
                    protocol.encode_verify_payload(
                        CURVE, "victim2", keys.public_key, MSG, signature
                    )
                )
                rng = random.Random(5)
                for _ in range(60):
                    mutated = bytearray(payload)
                    offset = rng.randrange(len(mutated))
                    mutated[offset] ^= 1 << rng.randrange(8)
                    client._writer.write(
                        protocol.encode_frame(
                            protocol.encode_request(
                                Opcode.VERIFY, bytes(mutated)
                            )
                        )
                    )
                await client._writer.drain()
                for _ in range(60):
                    status, reply = await client._read_reply()
                    if status == Status.OK:
                        # A flipped identity/message byte can still be a
                        # well-formed request - it just never verifies as
                        # a *different* request than the signed one...
                        # unless the flip was in a genuinely ignored bit
                        # of nothing: there is none, so True means the
                        # decode round-tripped to the original, which a
                        # single bit flip cannot.
                        assert reply == b"\x00"
                    else:
                        assert status == Status.ERR
                assert await client.ping()
            finally:
                await client.close()

        gateway_test(body)
