"""Chaos invariants: randomized fault plans must never break the physics.

Each case draws a random :class:`FaultPlan` from a seeded generator and
runs a small scenario under it.  Whatever the plan does, the simulation
must terminate, conservation must hold (delivered <= sent, ratios in
[0, 1]) and the run must be exactly reproducible from ``(seed, plan)``.
"""

import random

import pytest

from repro.netsim.faults import (
    CrashSpec,
    CorruptionWindow,
    FaultPlan,
    KGCOutage,
    RadioWindow,
)
from repro.netsim.scenario import ScenarioConfig, run_scenario

SIM_TIME = 12.0
BASE = dict(sim_time_s=SIM_TIME, n_flows=2, n_nodes=12)


def random_plan(rng: random.Random) -> FaultPlan:
    """Draw a small but adversarial plan: every fault class may appear."""

    def window(cls, **extra):
        start = rng.uniform(0.0, SIM_TIME * 0.7)
        stop = start + rng.uniform(0.5, SIM_TIME * 0.5)
        return cls(start, stop, **extra)

    crashes = tuple(
        CrashSpec(
            at_s=rng.uniform(0.5, SIM_TIME * 0.8),
            count=rng.randint(1, 2),
            recover_at_s=(
                rng.uniform(SIM_TIME * 0.85, SIM_TIME)
                if rng.random() < 0.5
                else None
            ),
        )
        for _ in range(rng.randint(0, 2))
    )
    radio = tuple(
        window(
            RadioWindow,
            loss_rate=rng.choice([None, rng.random(), 1.0]),
            range_scale=rng.uniform(0.3, 1.0),
        )
        for _ in range(rng.randint(0, 2))
    )
    corruption = tuple(
        window(CorruptionWindow, probability=rng.random())
        for _ in range(rng.randint(0, 2))
    )
    outages = tuple(window(KGCOutage) for _ in range(rng.randint(0, 1)))
    plan = FaultPlan(
        crashes=crashes,
        radio_windows=radio,
        corruption_windows=corruption,
        kgc_outages=outages,
    )
    plan.validate()
    return plan


def check_invariants(chaos_seed: int, protocol: str) -> None:
    """One chaos draw: run under a random plan, assert the invariants."""
    rng = random.Random(chaos_seed)
    plan = random_plan(rng)
    config = ScenarioConfig(
        seed=chaos_seed, protocol=protocol, faults=plan, **BASE
    )
    result = run_scenario(config)  # invariant 1: terminates without raising
    report = result.report()
    # Invariant 2: conservation - nothing is delivered out of thin air.
    assert report["data_received"] <= report["data_sent"]
    assert 0.0 <= report["packet_delivery_ratio"] <= 1.0
    assert 0.0 <= report["packet_drop_ratio"] <= 1.0
    assert report["end_to_end_delay"] >= 0.0
    # Invariant 3: the same (seed, plan) reproduces the run exactly.
    again = run_scenario(config)
    assert again.report() == report
    assert again.fault_events == result.fault_events


class TestChaosSmoke:
    @pytest.mark.parametrize("chaos_seed", [101, 202, 303])
    def test_aodv_invariants(self, chaos_seed):
        check_invariants(chaos_seed, "aodv")

    @pytest.mark.parametrize("chaos_seed", [404, 505, 606])
    def test_mccls_invariants(self, chaos_seed):
        check_invariants(chaos_seed, "mccls")


@pytest.mark.slow
class TestChaosMatrix:
    """The heavier sweep: more draws, every protocol."""

    @pytest.mark.parametrize("protocol", ["aodv", "mccls", "pki"])
    @pytest.mark.parametrize("chaos_seed", range(1000, 1010))
    def test_invariants(self, protocol, chaos_seed):
        check_invariants(chaos_seed, protocol)
