"""Scenario construction and end-to-end simulation tests."""

import pytest

from repro.errors import SimulationError
from repro.netsim.scenario import (
    ScenarioConfig,
    build_scenario,
    paper_speed_sweep,
    run_scenario,
)

FAST = dict(sim_time_s=20.0, n_flows=3, n_nodes=14)


class TestConfig:
    def test_defaults_match_paper(self):
        config = ScenarioConfig()
        assert config.n_nodes == 20
        assert config.area_width == 1500.0
        assert config.area_height == 300.0
        assert config.pause_time == 0.0
        assert config.n_attackers == 2

    def test_validation_protocol(self):
        with pytest.raises(SimulationError):
            ScenarioConfig(protocol="ospf").validate()

    def test_validation_attack(self):
        with pytest.raises(SimulationError):
            ScenarioConfig(attack="sybil").validate()

    def test_validation_node_count(self):
        with pytest.raises(SimulationError):
            ScenarioConfig(n_nodes=1).validate()

    def test_validation_flow_endpoints(self):
        with pytest.raises(SimulationError):
            ScenarioConfig(n_nodes=6, n_flows=3, attack="rushing").validate()

    def test_with_helper(self):
        base = ScenarioConfig()
        changed = base.with_(max_speed=17.0)
        assert changed.max_speed == 17.0
        assert base.max_speed != 17.0

    def test_speed_sweep(self):
        assert paper_speed_sweep() == [0.0, 5.0, 10.0, 15.0, 20.0]


class TestBuild:
    def test_node_roles(self):
        config = ScenarioConfig(attack="blackhole", **FAST)
        sim, nodes, flows, metrics, attacker_ids = build_scenario(config)
        assert len(nodes) == config.n_nodes
        assert len(attacker_ids) == 2
        roles = {nodes[a].role for a in attacker_ids}
        assert roles == {"blackhole"}

    def test_flow_endpoints_are_honest(self):
        config = ScenarioConfig(attack="rushing", **FAST)
        sim, nodes, flows, metrics, attacker_ids = build_scenario(config)
        for flow in flows:
            assert flow.spec.source not in attacker_ids
            assert flow.spec.destination not in attacker_ids

    def test_flow_endpoints_disjoint(self):
        config = ScenarioConfig(**FAST)
        _, _, flows, _, _ = build_scenario(config)
        endpoints = [flow.spec.source for flow in flows] + [
            flow.spec.destination for flow in flows
        ]
        assert len(endpoints) == len(set(endpoints))

    def test_secure_nodes_in_mccls_mode(self):
        config = ScenarioConfig(protocol="mccls", **FAST)
        _, nodes, _, _, _ = build_scenario(config)
        assert all(node.role == "honest-mccls" for node in nodes.values())

    def test_initially_connected_pairs(self):
        from repro.netsim.mobility import distance
        from repro.netsim.scenario import _connected_components

        config = ScenarioConfig(**FAST, seed=11, max_speed=0.0)
        _, nodes, flows, _, _ = build_scenario(config)
        positions = {nid: node.mobility.position(0.0) for nid, node in nodes.items()}
        components = _connected_components(
            list(nodes), positions, config.range_m
        )
        component_of = {
            nid: i for i, comp in enumerate(components) for nid in comp
        }
        for flow in flows:
            assert component_of[flow.spec.source] == component_of[
                flow.spec.destination
            ]
        assert distance is not None


class TestRun:
    def test_determinism(self):
        config = ScenarioConfig(seed=5, **FAST)
        a = run_scenario(config).report()
        b = run_scenario(config).report()
        assert a == b

    def test_different_seeds_differ(self):
        a = run_scenario(ScenarioConfig(seed=5, **FAST)).report()
        b = run_scenario(ScenarioConfig(seed=6, **FAST)).report()
        assert a != b

    def test_basic_delivery(self):
        report = run_scenario(ScenarioConfig(seed=5, **FAST)).report()
        assert report["packet_delivery_ratio"] > 0.6
        assert report["data_sent"] > 0

    @pytest.mark.parametrize("protocol", ["aodv", "mccls"])
    @pytest.mark.parametrize("attack", [None, "blackhole", "rushing"])
    def test_protocol_attack_matrix(self, protocol, attack):
        config = ScenarioConfig(
            seed=5, protocol=protocol, attack=attack, **FAST
        )
        result = run_scenario(config)
        report = result.report()
        assert report["data_sent"] > 0
        if attack:
            assert len(result.attacker_ids) == 2
        if protocol == "mccls" and attack:
            assert report["packet_drop_ratio"] == 0.0

    def test_real_crypto_smoke(self):
        config = ScenarioConfig(
            seed=5,
            protocol="mccls",
            real_crypto=True,
            sim_time_s=10.0,
            n_flows=2,
            n_nodes=10,
        )
        report = run_scenario(config).report()
        assert report["data_sent"] > 0
        assert report["packet_delivery_ratio"] > 0.3

    def test_crypto_delay_increases_latency(self):
        fast = run_scenario(
            ScenarioConfig(seed=5, protocol="mccls", crypto_speedup=1000.0, **FAST)
        ).report()
        slow = run_scenario(
            ScenarioConfig(seed=5, protocol="mccls", crypto_speedup=0.2, **FAST)
        ).report()
        assert slow["end_to_end_delay"] > fast["end_to_end_delay"]
