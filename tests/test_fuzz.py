"""Robustness fuzzing: malformed input must fail loudly, never corrupt.

Property-based negative testing: decoders fed random bytes must either
return a valid object or raise :class:`SerializationError` - never any
other exception and never an invalid point; verifiers fed garbage must
return False or raise the documented :class:`SignatureError`.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import serialization as ser
from repro.core.mccls import McCLS, McCLSSignature
from repro.errors import SerializationError
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext

CURVE = toy_curve(32)


class TestDecoderFuzz:
    @given(st.binary(max_size=80))
    @settings(max_examples=60)
    def test_g1_decoder_total(self, blob):
        try:
            point, _ = ser.decode_g1(CURVE, blob)
        except SerializationError:
            return
        assert point.is_infinity() or point.is_on_curve()

    @given(st.binary(max_size=120))
    @settings(max_examples=60)
    def test_g2_decoder_total(self, blob):
        try:
            point, _ = ser.decode_g2(CURVE, blob)
        except SerializationError:
            return
        assert point.is_infinity() or point.is_on_curve()

    @given(st.binary(max_size=200))
    @settings(max_examples=60)
    def test_signature_decoder_total(self, blob):
        try:
            sig = ser.decode_mccls_signature(CURVE, blob)
        except SerializationError:
            return
        assert isinstance(sig, McCLSSignature)

    @given(st.binary(max_size=64))
    @settings(max_examples=60)
    def test_identity_decoder_total(self, blob):
        try:
            ident, rest = ser.decode_identity(blob)
        except SerializationError:
            return  # the only permitted failure - raw decoder errors leak
        assert isinstance(ident, str)
        assert isinstance(rest, bytes)

    def test_identity_bad_utf8_raises_serialization_error(self):
        blob = ser.encode_identity("node-7")[:-1] + b"\xff"
        with pytest.raises(SerializationError):
            ser.decode_identity(blob)

    @given(st.binary(max_size=32))
    @settings(max_examples=40)
    def test_scalar_decoder_total(self, blob):
        try:
            value, _ = ser.decode_scalar(CURVE, blob)
        except SerializationError:
            return
        assert 0 <= value < CURVE.n


class TestBitflipFuzz:
    """Any single bit-flip of a valid encoded signature must not verify."""

    @given(st.integers(min_value=0, max_value=8 * ser.mccls_signature_size(CURVE) - 1))
    @settings(max_examples=40, deadline=None)
    def test_bitflipped_signature_rejected(self, bit_index):
        scheme = McCLS(PairingContext(CURVE, random.Random(0xF00)), precompute_s=True)
        keys = scheme.generate_user_keys("fuzz@manet")
        sig = scheme.sign(b"payload", keys)
        blob = bytearray(ser.encode_mccls_signature(CURVE, sig))
        blob[bit_index // 8] ^= 1 << (bit_index % 8)
        try:
            mutated = ser.decode_mccls_signature(CURVE, bytes(blob))
        except SerializationError:
            return  # rejected at decode: fine
        if mutated == sig:  # flip landed in ignored padding? not possible,
            pytest.skip("mutation produced the identical signature")
        assert not scheme.verify(b"payload", mutated, keys.identity, keys.public_key)


class TestCorruptionCorpus:
    """In-flight corruption corpus: every way a valid wire signature can be
    damaged (bit flips, truncation, extension, byte stomps, reordering)
    must end in a SerializationError from the decoder or a clean False
    from the verifier - never any other exception and never acceptance."""

    SCHEME = McCLS(PairingContext(CURVE, random.Random(0xC0)), precompute_s=True)
    KEYS = SCHEME.generate_user_keys("corpus@manet")
    SIG = SCHEME.sign(b"corpus payload", KEYS)
    BLOB = ser.encode_mccls_signature(CURVE, SIG)

    @staticmethod
    def corpus(blob, rng):
        yield blob[: len(blob) // 2]  # truncation
        yield blob + b"\x00" * 7  # extension
        yield b""  # empty wire
        yield bytes(len(blob))  # all zeros
        yield bytes(255 - b for b in blob)  # inverted
        yield blob[::-1]  # reversed
        for _ in range(24):  # random byte stomps
            mutated = bytearray(blob)
            for _ in range(rng.randint(1, 4)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            yield bytes(mutated)
        for _ in range(24):  # random multi-bit flips
            mutated = bytearray(blob)
            for _ in range(rng.randint(1, 8)):
                bit = rng.randrange(len(mutated) * 8)
                mutated[bit // 8] ^= 1 << (bit % 8)
            yield bytes(mutated)

    def test_mutated_wire_signatures_rejected_never_crash(self):
        rng = random.Random(0xDEAD)
        accepted = 0
        for blob in self.corpus(self.BLOB, rng):
            if blob == self.BLOB:
                continue  # a stomp may rewrite a byte to its old value
            try:
                sig = ser.decode_mccls_signature(CURVE, blob)
            except SerializationError:
                continue  # rejected on the wire: fine
            accepted += self.SCHEME.verify(
                b"corpus payload", sig, self.KEYS.identity, self.KEYS.public_key
            )
        assert accepted == 0  # no mutation ever verified

    def test_unmutated_signature_still_verifies(self):
        sig = ser.decode_mccls_signature(CURVE, self.BLOB)
        assert self.SCHEME.verify(
            b"corpus payload", sig, self.KEYS.identity, self.KEYS.public_key
        )


class TestVerifierGarbageTolerance:
    def test_signature_from_other_curve_rejected_or_raises(self):
        from repro.errors import ReproError

        other = toy_curve(48)
        other_scheme = McCLS(PairingContext(other, random.Random(1)))
        other_keys = other_scheme.generate_user_keys("alien")
        alien_sig = other_scheme.sign(b"m", other_keys)

        scheme = McCLS(PairingContext(CURVE, random.Random(2)))
        keys = scheme.generate_user_keys("local")
        try:
            assert not scheme.verify(
                b"m", alien_sig, keys.identity, keys.public_key
            )
        except ReproError:
            pass  # loud, typed failure is acceptable

    @given(st.text(max_size=64), st.binary(max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_identity_and_message(self, identity, message):
        scheme = McCLS(PairingContext(CURVE, random.Random(3)))
        keys = scheme.generate_user_keys(identity or "empty")
        sig = scheme.sign(message, keys)
        assert scheme.verify(message, sig, keys.identity, keys.public_key)
