"""Campaign (multi-seed statistics and run isolation) tests."""

import pytest

from repro.errors import SimulationError
from repro.netsim import campaign as campaign_mod
from repro.netsim import crypto_model
from repro.netsim.campaign import compare_protocols, run_campaign, summarize
from repro.netsim.faults import CrashSpec, FaultPlan
from repro.netsim.crypto_model import OperationCosts
from repro.netsim.scenario import ScenarioConfig, run_scenario

FAST = dict(sim_time_s=15.0, n_flows=3, n_nodes=14)


def failing_on(bad_seeds):
    """A run_scenario stand-in that raises for the chosen seeds."""

    def run(config):
        if config.seed in bad_seeds:
            raise RuntimeError(f"injected failure for seed {config.seed}")
        return run_scenario(config)

    return run


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_zero_variance(self):
        summary = summarize([3.0, 3.0, 3.0])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 3.0

    def test_empty(self):
        assert summarize([]).mean == 0.0

    def test_ci_narrows_with_samples(self):
        wide = summarize([1.0, 2.0])
        narrow = summarize([1.0, 2.0] * 10)
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)


class TestCampaign:
    def test_runs_all_seeds(self):
        result = run_campaign(ScenarioConfig(**FAST), seeds=[1, 2, 3])
        assert result.seeds == [1, 2, 3]
        pdr = result.metrics["packet_delivery_ratio"]
        assert len(pdr.samples) == 3
        assert 0.0 <= pdr.mean <= 1.0

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(ScenarioConfig(**FAST), seeds=[])

    def test_table_text(self):
        result = run_campaign(ScenarioConfig(**FAST), seeds=[1, 2])
        table = result.table_text()
        assert "packet_delivery_ratio" in table
        assert "95% CI" in table

    def test_invalid_failure_budget_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(ScenarioConfig(**FAST), seeds=[1], failure_budget=1.5)

    def test_compare_protocols(self):
        comparison = compare_protocols(
            ScenarioConfig(**FAST), seeds=[1, 2], protocols=("aodv", "mccls")
        )
        assert set(comparison) == {"aodv", "mccls"}
        # Both deliver in the same band (the Figure 1 claim, with CIs).
        assert abs(comparison["aodv"].mean - comparison["mccls"].mean) < 0.15


class TestRunIsolation:
    def test_failed_seed_recorded_and_sweep_survives(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "run_scenario", failing_on({2}))
        result = run_campaign(
            ScenarioConfig(**FAST), seeds=[1, 2, 3], failure_budget=0.5
        )
        assert result.completed_seeds == [1, 3]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.seed == 2
        assert failure.error_type == "RuntimeError"
        assert "seed 2" in str(failure)
        # Summaries are computed over the surviving samples only.
        assert len(result.metrics["packet_delivery_ratio"].samples) == 2
        assert "2/3 runs ok" in result.summary_line()
        assert "RuntimeError" in result.summary_line()

    def test_budget_exceeded_raises(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "run_scenario", failing_on({2, 3}))
        with pytest.raises(SimulationError, match="failure budget exceeded"):
            run_campaign(
                ScenarioConfig(**FAST), seeds=[1, 2, 3], failure_budget=0.4
            )

    def test_all_runs_failing_raises(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "run_scenario", failing_on({1, 2}))
        with pytest.raises(SimulationError, match="all 2 campaign runs"):
            run_campaign(
                ScenarioConfig(**FAST), seeds=[1, 2], failure_budget=1.0
            )

    def test_default_budget_tolerates_nothing(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "run_scenario", failing_on({2}))
        with pytest.raises(SimulationError):
            run_campaign(ScenarioConfig(**FAST), seeds=[1, 2, 3])

    def test_failure_records_the_fault_plan(self, monkeypatch):
        monkeypatch.setattr(campaign_mod, "run_scenario", failing_on({1}))
        plan = FaultPlan(crashes=(CrashSpec(at_s=2.0, count=1),))
        result = run_campaign(
            ScenarioConfig(faults=plan, **FAST),
            seeds=[1, 2],
            failure_budget=0.5,
        )
        assert result.failures[0].fault_plan == repr(plan.to_spec())


class TestFaultAggregation:
    def test_fault_counts_summed_over_runs(self):
        plan = FaultPlan(crashes=(CrashSpec(at_s=2.0, count=1),))
        result = run_campaign(
            ScenarioConfig(faults=plan, **FAST), seeds=[1, 2, 3]
        )
        assert result.fault_counts["fault.node_crash"] == 3
        assert "faults injected" in result.summary_line()

    def test_healthy_campaign_reports_no_faults(self):
        result = run_campaign(ScenarioConfig(**FAST), seeds=[1, 2])
        assert result.fault_counts == {}
        assert result.summary_line() == "campaign: 2/2 runs ok"


class TestCalibration:
    """``calibrate=True`` times the pairing ONCE in the parent and ships
    the measured OperationCosts to every run - the per-worker re-timing
    (which skewed simulated delays whenever a worker landed on a loaded
    core) is gone."""

    SENTINEL = OperationCosts(
        pairing=0.123, scalar_mult=0.017, gt_exp=0.031, group_hash=0.005
    )

    def _patch_measurement(self, monkeypatch):
        calls = []

        def fake_calibrate(curve, samples=3):
            calls.append(curve.name)
            return self.SENTINEL

        monkeypatch.setattr(crypto_model, "_CALIBRATED", {})
        monkeypatch.setattr(
            crypto_model, "calibrate_from_curve", fake_calibrate
        )
        return calls

    def test_calibrates_once_and_prices_every_run(self, monkeypatch):
        calls = self._patch_measurement(monkeypatch)
        seen_costs = []

        def spy_run_scenario(config):
            seen_costs.append(config.crypto_costs)
            return run_scenario(config)

        monkeypatch.setattr(campaign_mod, "run_scenario", spy_run_scenario)
        result = run_campaign(
            ScenarioConfig(protocol="mccls", **FAST),
            seeds=[1, 2, 3],
            calibrate=True,
        )
        assert len(result.completed_seeds) == 3
        assert calls == ["bn254"]  # measured exactly once, in the parent
        assert seen_costs == [self.SENTINEL] * 3

    def test_workers_receive_parent_costs(self, monkeypatch):
        """The parallel fan-out ships the already-calibrated scenario;
        no worker path can re-trigger a measurement."""
        calls = self._patch_measurement(monkeypatch)
        shipped = {}

        def fake_parallel(config, seeds, workers):
            shipped["costs"] = config.crypto_costs
            # Deliver every seed so no serial fallback kicks in.
            return {
                seed: ("ok", {"packet_delivery_ratio": 1.0}, {})
                for seed in seeds
            }

        monkeypatch.setattr(
            campaign_mod, "_run_seeds_parallel", fake_parallel
        )
        run_campaign(
            ScenarioConfig(protocol="mccls", **FAST),
            seeds=[1, 2],
            workers=2,
            calibrate=True,
        )
        assert calls == ["bn254"]
        assert shipped["costs"] == self.SENTINEL

    def test_memoised_across_campaigns(self, monkeypatch):
        calls = self._patch_measurement(monkeypatch)
        config = ScenarioConfig(**FAST)
        run_campaign(config, seeds=[1], calibrate=True)
        run_campaign(config, seeds=[2], calibrate=True)
        assert calls == ["bn254"]  # second campaign hits the memo

    def test_real_crypto_calibrates_on_the_real_curve(self, monkeypatch):
        calls = self._patch_measurement(monkeypatch)

        def fake_run(config):
            raise SimulationError("stop after calibration")

        monkeypatch.setattr(campaign_mod, "run_scenario", fake_run)
        with pytest.raises(SimulationError):
            run_campaign(
                ScenarioConfig(protocol="mccls", real_crypto=True, **FAST),
                seeds=[1],
                calibrate=True,
            )
        assert calls == ["bn-toy64"]

    def test_disabled_by_default(self, monkeypatch):
        calls = self._patch_measurement(monkeypatch)
        run_campaign(ScenarioConfig(**FAST), seeds=[1])
        assert calls == []
