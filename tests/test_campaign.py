"""Campaign (multi-seed statistics) tests."""

import pytest

from repro.netsim.campaign import compare_protocols, run_campaign, summarize
from repro.netsim.scenario import ScenarioConfig

FAST = dict(sim_time_s=15.0, n_flows=3, n_nodes=14)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_zero_variance(self):
        summary = summarize([3.0, 3.0, 3.0])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 3.0

    def test_empty(self):
        assert summarize([]).mean == 0.0

    def test_ci_narrows_with_samples(self):
        wide = summarize([1.0, 2.0])
        narrow = summarize([1.0, 2.0] * 10)
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)


class TestCampaign:
    def test_runs_all_seeds(self):
        result = run_campaign(ScenarioConfig(**FAST), seeds=[1, 2, 3])
        assert result.seeds == [1, 2, 3]
        pdr = result.metrics["packet_delivery_ratio"]
        assert len(pdr.samples) == 3
        assert 0.0 <= pdr.mean <= 1.0

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(ScenarioConfig(**FAST), seeds=[])

    def test_table_text(self):
        result = run_campaign(ScenarioConfig(**FAST), seeds=[1, 2])
        table = result.table_text()
        assert "packet_delivery_ratio" in table
        assert "95% CI" in table

    def test_compare_protocols(self):
        comparison = compare_protocols(
            ScenarioConfig(**FAST), seeds=[1, 2], protocols=("aodv", "mccls")
        )
        assert set(comparison) == {"aodv", "mccls"}
        # Both deliver in the same band (the Figure 1 claim, with CIs).
        assert abs(comparison["aodv"].mean - comparison["mccls"].mean) < 0.15
