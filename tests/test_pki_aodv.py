"""PKI-AODV protocol tests (the certificate-based comparison)."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import AuthTag, DataPacket, Frame, RouteReply
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.pki_aodv import (
    PKIAODVNode,
    PKIMaterial,
    build_pki_material,
    certificate_bytes,
)
from repro.netsim.routing.secure_aodv import identity_of
from repro.netsim.scenario import ScenarioConfig, run_scenario
from repro.pairing.bn import toy_curve

CURVE = toy_curve(32)


class PKINet:
    def __init__(self, n=4, material=None, seed=4):
        self.sim = Simulator(seed=seed)
        self.metrics = MetricsCollector()
        self.radio = RadioMedium(self.sim, range_m=150.0, broadcast_jitter_s=0.001)
        self.nodes = {}
        for i in range(n):
            mat = (
                material[i]
                if material
                else PKIMaterial(auth_tag_bytes=400)
            )
            self.nodes[i] = PKIAODVNode(
                i,
                self.sim,
                self.radio,
                StaticPosition((i * 100.0, 0.0)),
                self.metrics,
                material=mat,
            )

    def send(self, src, dst, count=1):
        for seq in range(count):
            self.nodes[src].send_data(
                DataPacket(0, seq, src, dst, 128, self.sim.now)
            )

    def run(self, seconds=5.0):
        self.sim.run(until=self.sim.now + seconds)


class TestModelledMode:
    def test_delivery(self):
        net = PKINet()
        net.send(0, 3)
        net.run()
        assert net.metrics.data_received == 1
        assert net.metrics.auth_rejected == 0

    def test_forged_tag_rejected(self):
        net = PKINet(n=2)
        forged = RouteReply(
            originator=0,
            destination=1,
            destination_seq=50,
            hop_count=1,
            lifetime=30.0,
            responder=1,
            auth=AuthTag(signer=identity_of(1), size_bytes=400, forged=True),
            hop_auth=AuthTag(signer=identity_of(1), size_bytes=400, forged=True),
        )
        net.nodes[0].receive(Frame(sender=1, link_destination=0, payload=forged))
        net.run(1.0)
        assert net.metrics.auth_rejected >= 1

    def test_certificate_overhead_on_wire(self):
        """PKI routing messages are much larger than plain AODV's."""
        net = PKINet()
        net.send(0, 3)
        net.run()
        # Each RREQ carries two 400-byte tags; a handful of control
        # messages should already exceed several KB.
        assert net.metrics.control_bytes_sent > 3000


class TestRealMode:
    def test_real_ecdsa_end_to_end(self):
        materials = build_pki_material(CURVE, [0, 1, 2], real=True, seed=5)
        net = PKINet(n=3, material=materials)
        net.send(0, 2)
        net.run()
        assert net.metrics.data_received == 1
        assert net.metrics.auth_rejected == 0

    def test_real_mode_rejects_bad_signature(self):
        materials = build_pki_material(CURVE, [0, 1], real=True, seed=5)
        net = PKINet(n=2, material=materials)
        bogus = materials[0].ecdsa.sign(b"junk", materials[0].identity.keys)
        forged = RouteReply(
            originator=0,
            destination=1,
            destination_seq=50,
            hop_count=1,
            lifetime=30.0,
            responder=1,
            auth=AuthTag(
                signer=identity_of(1), size_bytes=400, signature=bogus
            ),
            hop_auth=AuthTag(
                signer=identity_of(1), size_bytes=400, signature=bogus
            ),
        )
        net.nodes[0].receive(Frame(sender=1, link_destination=0, payload=forged))
        net.run(1.0)
        assert net.metrics.auth_rejected >= 1

    def test_chain_of_two(self):
        materials = build_pki_material(
            CURVE, [0, 1], real=True, chain_length=2, seed=5
        )
        assert len(materials[0].identity.chain) == 2


class TestSizes:
    def test_certificate_bytes_positive(self):
        assert certificate_bytes(CURVE) > 100

    def test_tag_grows_with_chain(self):
        shallow = build_pki_material(CURVE, [0], chain_length=1)
        deep = build_pki_material(CURVE, [0], chain_length=3)
        assert deep[0].auth_tag_bytes > shallow[0].auth_tag_bytes


class TestScenarioIntegration:
    FAST = dict(sim_time_s=20.0, n_flows=3, n_nodes=14, seed=5)

    def test_pki_protocol_runs(self):
        report = run_scenario(
            ScenarioConfig(protocol="pki", **self.FAST)
        ).report()
        assert report["packet_delivery_ratio"] > 0.6
        assert report["auth_rejected"] == 0

    def test_pki_resists_attacks(self):
        for attack in ("blackhole", "rushing"):
            report = run_scenario(
                ScenarioConfig(protocol="pki", attack=attack, **self.FAST)
            ).report()
            assert report["packet_drop_ratio"] == 0.0

    def test_overhead_ordering(self):
        """The paper-intro claim: certificates cost bandwidth.
        control bytes: PKI > McCLS > plain AODV."""
        bytes_by_protocol = {}
        for protocol in ("aodv", "mccls", "pki"):
            report = run_scenario(
                ScenarioConfig(protocol=protocol, **self.FAST)
            ).report()
            bytes_by_protocol[protocol] = report["control_bytes_sent"]
        assert (
            bytes_by_protocol["pki"]
            > bytes_by_protocol["mccls"]
            > bytes_by_protocol["aodv"]
        )
