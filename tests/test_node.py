"""NetworkNode tests: link-layer filtering and the serialised CPU model."""

import pytest

from repro.netsim.crypto_model import CryptoTimingModel
from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.node import NetworkNode
from repro.netsim.packets import BROADCAST, DataPacket, Frame
from repro.netsim.radio import RadioMedium


class RecorderNode(NetworkNode):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.frames = []

    def receive(self, frame):
        self.frames.append((frame, self.sim.now))


def build(n=3):
    sim = Simulator(seed=2)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=500.0, broadcast_jitter_s=0.0)
    nodes = {
        i: RecorderNode(
            i, sim, radio, StaticPosition((i * 10.0, 0.0)), metrics
        )
        for i in range(n)
    }
    return sim, nodes


def packet(dst):
    return DataPacket(0, 0, 0, dst, 64, 0.0)


class TestLinkFiltering:
    def test_broadcast_received_by_all(self):
        sim, nodes = build()
        nodes[0].broadcast(packet(BROADCAST))
        sim.run()
        assert len(nodes[1].frames) == 1
        assert len(nodes[2].frames) == 1

    def test_unicast_filtered_by_link_destination(self):
        sim, nodes = build()
        nodes[0].unicast(1, packet(1))
        sim.run()
        assert len(nodes[1].frames) == 1
        assert len(nodes[2].frames) == 0  # heard it, dropped at link layer

    def test_sender_does_not_receive_own_frame(self):
        sim, nodes = build()
        nodes[0].broadcast(packet(BROADCAST))
        sim.run()
        assert nodes[0].frames == []


class TestCPUModel:
    def test_zero_cost_runs_inline(self):
        sim, nodes = build(1)
        ran = []
        nodes[0].cpu_process(0.0, ran.append, "now")
        assert ran == ["now"]

    def test_cost_delays_callback(self):
        sim, nodes = build(1)
        done = []
        nodes[0].cpu_process(0.5, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.5]

    def test_cpu_serialises_work(self):
        """Two 100ms jobs submitted together finish at 100ms and 200ms."""
        sim, nodes = build(1)
        finished = []
        nodes[0].cpu_process(0.1, lambda: finished.append(sim.now))
        nodes[0].cpu_process(0.1, lambda: finished.append(sim.now))
        sim.run()
        assert finished == pytest.approx([0.1, 0.2])

    def test_cpu_idle_gap(self):
        sim, nodes = build(1)
        finished = []
        nodes[0].cpu_process(0.1, lambda: finished.append(sim.now))
        sim.run()
        # After the CPU went idle, new work submitted at t=1.1 starts from
        # "now" (not from the old busy mark) and finishes 0.1s later.
        sim.schedule(1.0, nodes[0].cpu_process, 0.1, lambda: finished.append(sim.now))
        sim.run()
        assert finished == pytest.approx([0.1, 1.2])

    def test_independent_cpus(self):
        sim, nodes = build(2)
        finished = []
        nodes[0].cpu_process(0.1, lambda: finished.append((0, sim.now)))
        nodes[1].cpu_process(0.1, lambda: finished.append((1, sim.now)))
        sim.run()
        assert finished == [(0, pytest.approx(0.1)), (1, pytest.approx(0.1))]

    def test_default_crypto_model_is_free(self):
        sim, nodes = build(1)
        assert nodes[0].crypto.sign_delay() == 0.0

    def test_explicit_crypto_model(self):
        sim = Simulator(seed=2)
        radio = RadioMedium(sim)
        node = RecorderNode(
            0,
            sim,
            radio,
            StaticPosition((0, 0)),
            MetricsCollector(),
            crypto=CryptoTimingModel("mccls"),
        )
        assert node.crypto.sign_delay() > 0

    def test_position_property(self):
        sim, nodes = build(2)
        assert nodes[1].position == (10.0, 0.0)

    def test_repr(self):
        sim, nodes = build(1)
        assert "RecorderNode(id=0)" == repr(nodes[0])
