"""KGC master-secret rotation: cache invalidation end to end.

The bug these tests pin down: a rekey that only swaps the master secret
leaves three caches poisoned or leaking -

* the :class:`~repro.pairing.groups.PairingContext` pairing/Miller caches
  keep entries keyed by the *old* P_pub (never matched again: a pure leak),
* the fixed-base comb table for the old P_pub stays registered (and keeps
  winning LRU freshness through g1_mul calls that will never come),
* McCLS's signer-side ``S = x^{-1} * D_ID`` cache still holds values
  derived from partial keys the old secret issued - signatures minted from
  them can **never** verify after re-enrolment.

``rotate_master_secret`` must clear all three, and the first verify after
a rekey must run cold exactly once per identity, then warm again.
"""

from __future__ import annotations

import random

import pytest

from repro.core.mccls import McCLS
from repro.core.params import KeyGenerationCenter
from repro.netsim.faults import FaultPlan, KGCOutage
from repro.netsim.scenario import ScenarioConfig, build_scenario
from repro.pairing.bn import toy_curve
from repro.pairing.curve import point_key
from repro.pairing.groups import PairingContext

MSG = b"route request 42"


def make_scheme(curve, seed=0xBEEF, **kwargs):
    ctx = PairingContext(curve, random.Random(seed))
    return McCLS(ctx, **kwargs)


class TestRotateMasterSecret:
    def test_p_pub_changes_and_caches_are_cleared(self, curve32):
        scheme = make_scheme(curve32, precompute_s=True)
        ctx = scheme.ctx
        keys = scheme.generate_user_keys("node-1")
        sig = scheme.sign(MSG, keys)
        assert scheme.verify(MSG, sig, keys.identity, keys.public_key)
        assert len(ctx._miller_cache) > 0
        assert len(scheme._s_cache) > 0
        old_p_pub_key = point_key(scheme.p_pub_g1)
        old_p_pub = scheme.p_pub_g1

        scheme.rotate_master_secret()

        assert point_key(scheme.p_pub_g1) != old_p_pub_key
        assert len(ctx._pairing_cache) == 0
        assert len(ctx._miller_cache) == 0
        assert scheme._s_cache == {}
        # Old comb table dropped, new P_pub's registered as pinned
        # system bases (outside the LRU, so identity churn cannot evict
        # them).
        assert old_p_pub_key not in ctx._fixed_bases
        assert old_p_pub_key not in ctx._pinned_bases
        assert point_key(scheme.p_pub_g1) in ctx._pinned_bases
        assert point_key(scheme.p_pub_g2) in ctx._pinned_bases

    def test_explicit_secret_is_honoured(self, curve32):
        scheme = make_scheme(curve32)
        scheme.rotate_master_secret(12345)
        assert scheme.master_secret == 12345
        assert scheme.p_pub_g1 == scheme.ctx.g1 * 12345

    def test_zero_secret_rejected(self, curve32):
        scheme = make_scheme(curve32)
        with pytest.raises(Exception):
            scheme.rotate_master_secret(scheme.ctx.order)  # 0 mod n

    def test_old_signatures_fail_new_ones_verify(self, curve32):
        scheme = make_scheme(curve32, precompute_s=True)
        keys = scheme.generate_user_keys("node-1")
        old_sig = scheme.sign(MSG, keys)
        assert scheme.verify(MSG, old_sig, keys.identity, keys.public_key)

        scheme.rotate_master_secret()
        new_keys = scheme.generate_user_keys("node-1")

        # The old signature is bound to the old master secret.
        assert not scheme.verify(MSG, old_sig, keys.identity, keys.public_key)
        assert not scheme.verify(
            MSG, old_sig, new_keys.identity, new_keys.public_key
        )
        # Re-enrolment under the new secret works - which requires the
        # stale S-component cache to have been dropped (precompute_s=True
        # would otherwise replay the poisoned entry).
        new_sig = scheme.sign(MSG, new_keys)
        assert scheme.verify(MSG, new_sig, new_keys.identity, new_keys.public_key)

    def test_post_rekey_verify_misses_once_then_hits(self, curve32):
        scheme = make_scheme(curve32, precompute_s=True)
        ctx = scheme.ctx
        keys = scheme.generate_user_keys("node-1")
        sig = scheme.sign(MSG, keys)
        assert scheme.verify(MSG, sig, keys.identity, keys.public_key)
        assert scheme.verify(MSG, sig, keys.identity, keys.public_key)
        assert ctx.ops.cached_pairing_hits > 0

        scheme.rotate_master_secret()
        new_keys = scheme.generate_user_keys("node-1")
        new_sig = scheme.sign(MSG, new_keys)

        # First post-rekey verify: cold (cache was invalidated) - exactly
        # one miss, no stale hit.
        before = ctx.ops.cached_pairing_hits
        misses_before = ctx._miller_cache.misses
        assert scheme.verify(MSG, new_sig, new_keys.identity, new_keys.public_key)
        assert ctx.ops.cached_pairing_hits == before
        assert ctx._miller_cache.misses == misses_before + 1
        # Second verify: warm again under the new P_pub.
        assert scheme.verify(MSG, new_sig, new_keys.identity, new_keys.public_key)
        assert ctx.ops.cached_pairing_hits == before + 1


class TestKGCRekey:
    def test_rekey_reissues_every_enrolled_identity(self, curve32):
        kgc = KeyGenerationCenter(McCLS, curve=curve32, seed=7)
        identities = ["node-1", "node-2", "node-3"]
        old = {ident: kgc.enroll(ident) for ident in identities}
        old_params = kgc.public_params()

        new_params = kgc.rekey()

        assert new_params.p_pub_g1 != old_params.p_pub_g1
        assert kgc.issued_identities() == sorted(identities)
        for ident in identities:
            fresh = kgc.keys_for(ident)
            assert fresh.partial.d_id != old[ident].partial.d_id
            sig = kgc.scheme.sign(MSG, fresh)
            assert kgc.scheme.verify(MSG, sig, ident, fresh.public_key)

    def test_rekey_returns_refreshed_params(self, curve32):
        kgc = KeyGenerationCenter(McCLS, curve=curve32, seed=7)
        kgc.enroll("node-1")
        params = kgc.rekey(new_secret=99991)
        assert params.p_pub_g1 == kgc.ctx.g1 * 99991


class TestFaultInjectedRekey:
    """A KGC outage with ``rekey=True`` rotates the live simulation's
    scheme on recovery and leaves no stale cache entries behind."""

    CONFIG = ScenarioConfig(
        seed=11,
        protocol="mccls",
        real_crypto=True,
        n_nodes=6,
        n_flows=2,
        sim_time_s=8.0,
        traffic_start_s=1.0,
        faults=FaultPlan(kgc_outages=(KGCOutage(2.0, 4.0, rekey=True),)),
    )

    def test_rekey_fires_and_invalidates_caches(self):
        sim, nodes, flows, metrics, _ = build_scenario(self.CONFIG)
        material = next(
            node.material for node in nodes.values() if node.material.real
        )
        scheme = material.scheme
        ctx = scheme.ctx
        old_p_pub_key = point_key(scheme.p_pub_g1)
        old_keys = {
            node_id: node.material.keys for node_id, node in nodes.items()
        }

        sim.run(until=self.CONFIG.sim_time_s + 5.0)

        summary = sim.faults.summary()
        assert summary.get("fault.kgc_rekey") == 1
        # Master secret rotated exactly once across the shared scheme.
        assert point_key(scheme.p_pub_g1) != old_p_pub_key
        # No pairing/Miller entry keyed by the old P_pub survives.
        for g1_key, _g2_key in ctx._miller_cache:
            assert g1_key != old_p_pub_key
        for g1_key, _g2_key in ctx._pairing_cache:
            assert g1_key != old_p_pub_key
        assert old_p_pub_key not in ctx._fixed_bases
        # Every honest node was re-issued and the shared directory updated.
        for node_id, node in nodes.items():
            fresh = node.material.keys
            assert fresh is not old_keys[node_id]
            assert node.material.directory[fresh.identity] == fresh.public_key
            sig = scheme.sign(MSG, fresh)
            assert scheme.verify(MSG, sig, fresh.identity, fresh.public_key)

    def test_post_rekey_traffic_still_authenticates(self):
        sim, nodes, flows, metrics, _ = build_scenario(self.CONFIG)
        sim.run(until=self.CONFIG.sim_time_s + 5.0)
        # The network keeps routing after the rotation: deliveries happen
        # and at least some of them land after the rekey at t=4.
        assert metrics.data_received > 0

    def test_rekey_flag_round_trips_through_spec(self):
        plan = self.CONFIG.faults
        assert FaultPlan.from_spec(plan.to_spec()) == plan
