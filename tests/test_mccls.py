"""McCLS scheme tests: correctness, tamper-rejection, key lifecycle."""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mccls import McCLS, McCLSSignature
from repro.errors import SignatureError
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext

CURVE = toy_curve(32)


def make_scheme(seed=0xA11CE, **kwargs) -> McCLS:
    return McCLS(PairingContext(CURVE, random.Random(seed)), **kwargs)


@pytest.fixture()
def scheme():
    return make_scheme()


@pytest.fixture()
def keys(scheme):
    return scheme.generate_user_keys("alice@manet")


class TestCorrectness:
    def test_sign_verify(self, scheme, keys):
        sig = scheme.sign(b"hello cps", keys)
        assert scheme.verify(b"hello cps", sig, keys.identity, keys.public_key)

    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_messages(self, message):
        scheme = make_scheme()
        keys = scheme.generate_user_keys("prop@manet")
        sig = scheme.sign(message, keys)
        assert scheme.verify(message, sig, keys.identity, keys.public_key)

    def test_string_messages(self, scheme, keys):
        sig = scheme.sign("unicode message éè", keys)
        assert scheme.verify(
            "unicode message éè", sig, keys.identity, keys.public_key
        )

    def test_multiple_identities(self, scheme):
        for ident in ("a", "b", "node-17", "x" * 100):
            keys = scheme.generate_user_keys(ident)
            sig = scheme.sign(b"m", keys)
            assert scheme.verify(b"m", sig, ident, keys.public_key)

    def test_signatures_are_randomised(self, scheme, keys):
        sig1 = scheme.sign(b"m", keys)
        sig2 = scheme.sign(b"m", keys)
        assert sig1.r != sig2.r  # fresh r per signature
        assert sig1.s == sig2.s  # S = x^{-1} D_ID is signer-constant

    def test_correctness_equation_structure(self, scheme, keys):
        # V*P - h*R == h*x*P by construction.
        from repro.pairing.hashing import hash_to_scalar

        sig = scheme.sign(b"eq", keys)
        ctx = scheme.ctx
        h = ctx.hash_scalar(b"H2/mccls", b"eq", sig.r, keys.public_key)
        left = ctx.g1 * sig.v - sig.r * h
        assert left == ctx.g1 * ((h * keys.secret_value) % ctx.order)
        assert hash_to_scalar is not None


class TestRejection:
    def test_wrong_message(self, scheme, keys):
        sig = scheme.sign(b"original", keys)
        assert not scheme.verify(b"tampered", sig, keys.identity, keys.public_key)

    def test_wrong_identity(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        assert not scheme.verify(b"m", sig, "mallory", keys.public_key)

    def test_wrong_public_key(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        other = scheme.generate_user_keys("other")
        assert not scheme.verify(b"m", sig, keys.identity, other.public_key)

    def test_tampered_v(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        bad = dataclasses.replace(sig, v=(sig.v + 1) % scheme.ctx.order)
        assert not scheme.verify(b"m", bad, keys.identity, keys.public_key)

    def test_tampered_s(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        bad = dataclasses.replace(sig, s=sig.s * 2)
        assert not scheme.verify(b"m", bad, keys.identity, keys.public_key)

    def test_tampered_r(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        bad = dataclasses.replace(sig, r=sig.r + scheme.ctx.g1)
        assert not scheme.verify(b"m", bad, keys.identity, keys.public_key)

    def test_v_out_of_range(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        assert not scheme.verify(
            b"m",
            dataclasses.replace(sig, v=0),
            keys.identity,
            keys.public_key,
        )

    def test_s_infinity_rejected(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        bad = dataclasses.replace(sig, s=scheme.ctx.curve.g2_curve.infinity())
        assert not scheme.verify(b"m", bad, keys.identity, keys.public_key)

    def test_r_off_curve_rejected(self, scheme, keys):
        spec = CURVE.spec
        bogus = CURVE.g1_curve.unsafe_point(spec.fp(1), spec.fp(1))
        sig = scheme.sign(b"m", keys)
        bad = dataclasses.replace(sig, r=bogus)
        assert not scheme.verify(b"m", bad, keys.identity, keys.public_key)

    def test_wrong_signature_type(self, scheme, keys):
        with pytest.raises(SignatureError):
            scheme.verify(b"m", object(), keys.identity, keys.public_key)

    def test_cross_signer_signature(self, scheme):
        alice = scheme.generate_user_keys("alice")
        bob = scheme.generate_user_keys("bob")
        sig = scheme.sign(b"m", alice)
        assert not scheme.verify(b"m", sig, bob.identity, bob.public_key)


class TestKeyLifecycle:
    def test_partial_key_structure(self, scheme):
        partial = scheme.extract_partial_key("carol")
        # D_ID = s * Q_ID
        assert partial.d_id == partial.q_id * scheme.master_secret
        assert CURVE.in_g2(partial.d_id)

    def test_public_key_structure(self, scheme, keys):
        assert keys.public_key == scheme.p_pub_g1 * keys.secret_value

    def test_master_secret_reproducible(self):
        a = make_scheme(seed=1, master_secret=12345)
        b = make_scheme(seed=2, master_secret=12345)
        assert a.p_pub_g1 == b.p_pub_g1

    def test_distinct_kgc_incompatible(self):
        kgc_a = make_scheme(seed=1)
        kgc_b = make_scheme(seed=2)
        keys = kgc_a.generate_user_keys("alice")
        sig = kgc_a.sign(b"m", keys)
        assert not kgc_b.verify(b"m", sig, keys.identity, keys.public_key)

    def test_precompute_s_consistency(self):
        cached = make_scheme(precompute_s=True)
        keys = cached.generate_user_keys("dave")
        sig1 = cached.sign(b"m1", keys)
        sig2 = cached.sign(b"m2", keys)
        assert sig1.s == sig2.s
        assert cached.verify(b"m1", sig1, keys.identity, keys.public_key)
        assert cached.verify(b"m2", sig2, keys.identity, keys.public_key)

    def test_precompute_s_saves_operations(self):
        cached = make_scheme(precompute_s=True)
        keys = cached.generate_user_keys("emma")
        cached.sign(b"warmup", keys)
        _, ops = cached.measure_sign(b"steady", keys)
        assert ops.scalar_mults == 1  # only R = (r-x)P remains per message


class TestOperationProfile:
    def test_sign_is_two_mults_no_pairings(self, scheme, keys):
        _, ops = scheme.measure_sign(b"profile", keys)
        assert ops.pairings == 0
        assert ops.scalar_mults == 2

    def test_verify_warm_is_one_pairing(self, scheme, keys):
        sig = scheme.sign(b"profile", keys)
        scheme.verify(b"profile", sig, keys.identity, keys.public_key)
        _, ops = scheme.measure_verify(b"profile", sig, keys)
        assert ops.pairings == 1
        assert ops.cached_pairing_hits == 1


class TestSignatureObject:
    def test_components(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        v, s, r = sig.components()
        assert sig == McCLSSignature(v=v, s=s, r=r)

    def test_frozen(self, scheme, keys):
        sig = scheme.sign(b"m", keys)
        with pytest.raises(dataclasses.FrozenInstanceError):
            sig.v = 1
