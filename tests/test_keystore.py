"""Keystore persistence tests."""

import json

import pytest

from repro.core import KeyGenerationCenter, McCLS
from repro.core.keystore import load_kgc, save_kgc
from repro.errors import SerializationError
from repro.pairing.bn import toy_curve
from repro.schemes import APScheme

CURVE = toy_curve(32)


@pytest.fixture()
def kgc():
    center = KeyGenerationCenter(McCLS, curve=CURVE, seed=13)
    center.enroll("alice")
    center.enroll("bob")
    return center


class TestRoundtrip:
    def test_save_load(self, kgc, tmp_path):
        path = tmp_path / "kgc.json"
        save_kgc(path, kgc)
        restored = load_kgc(path)
        assert restored.scheme.master_secret == kgc.scheme.master_secret
        assert restored.issued_identities() == ["alice", "bob"]

    def test_restored_keys_sign_and_verify(self, kgc, tmp_path):
        path = tmp_path / "kgc.json"
        save_kgc(path, kgc)
        restored = load_kgc(path)
        keys = restored.keys_for("alice")
        sig = restored.scheme.sign(b"m", keys)
        assert restored.scheme.verify(b"m", sig, keys.identity, keys.public_key)

    def test_cross_process_verification(self, kgc, tmp_path):
        """A signature made before saving verifies after restoring."""
        keys = kgc.keys_for("alice")
        sig = kgc.scheme.sign(b"made before save", keys)
        path = tmp_path / "kgc.json"
        save_kgc(path, kgc)
        restored = load_kgc(path)
        assert restored.scheme.verify(
            b"made before save", sig, keys.identity, keys.public_key
        )

    def test_ap_scheme_with_extra_fields(self, tmp_path):
        center = KeyGenerationCenter(APScheme, curve=CURVE, seed=14)
        center.enroll("carol")
        path = tmp_path / "ap.json"
        save_kgc(path, center)
        restored = load_kgc(path)
        keys = restored.keys_for("carol")
        assert keys.public_key_extra is not None
        assert keys.full_private_key is not None
        sig = restored.scheme.sign(b"m", keys)
        assert restored.scheme.verify(
            b"m", sig, keys.identity, keys.public_key, keys.public_key_extra
        )


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_kgc(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_kgc(path)

    def test_wrong_version(self, kgc, tmp_path):
        path = tmp_path / "kgc.json"
        save_kgc(path, kgc)
        document = json.loads(path.read_text())
        document["format_version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError):
            load_kgc(path)

    def test_tampered_d_id_detected(self, kgc, tmp_path):
        path = tmp_path / "kgc.json"
        save_kgc(path, kgc)
        document = json.loads(path.read_text())
        # Swap alice's D_ID for bob's: the s*Q_ID cross-check must fire.
        document["users"][0]["d_id"] = document["users"][1]["d_id"]
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError):
            load_kgc(path)

    def test_tampered_point_bytes_detected(self, kgc, tmp_path):
        path = tmp_path / "kgc.json"
        save_kgc(path, kgc)
        document = json.loads(path.read_text())
        blob = bytearray(bytes.fromhex(document["users"][0]["public_key"]))
        blob[-1] ^= 0xFF
        document["users"][0]["public_key"] = bytes(blob).hex()
        path.write_text(json.dumps(document))
        with pytest.raises(SerializationError):
            load_kgc(path)

    def test_secrets_present_in_file(self, kgc, tmp_path):
        """Document the threat model: the keystore holds raw secrets."""
        path = tmp_path / "kgc.json"
        save_kgc(path, kgc)
        document = json.loads(path.read_text())
        assert document["master_secret"].startswith("0x")
        assert all("secret_value" in user for user in document["users"])
