"""Fault-injection tests: churn, degraded radio, corruption, KGC outage.

The invariant under every fault regime is *graceful degradation*: the
simulation completes, corrupted input is rejected (never crashes a
receiver), broken routes are repaired through the normal AODV error
machinery, and the same ``(seed, plan)`` pair reproduces the run exactly.
"""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.faults import (
    CrashSpec,
    CorruptionWindow,
    FaultInjector,
    FaultPlan,
    KGCOutage,
    RadioWindow,
)
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.routing.secure_aodv import CryptoMaterial, McCLSAODVNode
from repro.netsim.scenario import ScenarioConfig, run_scenario

FAST = dict(sim_time_s=15.0, n_flows=3, n_nodes=14)


class Net:
    """Static-topology harness with a fault injector attached."""

    def __init__(self, positions, plan=None, node_cls=AODVNode, seed=4, **kw):
        self.sim = Simulator(seed=seed)
        self.metrics = MetricsCollector()
        self.radio = RadioMedium(
            self.sim, range_m=150.0, broadcast_jitter_s=0.001
        )
        self.nodes = {
            node_id: node_cls(
                node_id,
                self.sim,
                self.radio,
                StaticPosition(pos),
                self.metrics,
                **kw,
            )
            for node_id, pos in positions.items()
        }
        self.injector = None
        if plan is not None:
            self.injector = FaultInjector(
                self.sim, self.radio, self.nodes, list(self.nodes), plan
            )
            self.injector.install()

    def send(self, source, destination, count=1):
        for seq in range(count):
            self.nodes[source].send_data(
                DataPacket(
                    flow_id=0,
                    seq=seq,
                    source=source,
                    destination=destination,
                    payload_bytes=128,
                    created_at=self.sim.now,
                )
            )

    def run(self, until):
        self.sim.run(until=until)


def line(n, spacing=100.0):
    return {i: (i * spacing, 0.0) for i in range(n)}


class TestFaultPlanSpec:
    def test_round_trip(self):
        plan = FaultPlan(
            crashes=(CrashSpec(at_s=1.0, node=3, recover_at_s=4.0),),
            radio_windows=(RadioWindow(2.0, 5.0, loss_rate=0.9),),
            corruption_windows=(CorruptionWindow(1.0, 3.0, probability=0.5),),
            kgc_outages=(KGCOutage(0.5, 6.0),),
        )
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(crashes=(CrashSpec(at_s=1.0),)).empty

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_spec({"crashs": [{"at": 1.0}]})

    def test_unknown_entry_key_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_spec({"crashes": [{"at": 1.0, "nodee": 3}]})

    def test_invalid_values_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_spec({"crashes": [{"at": 2.0, "recover_at": 1.0}]})
        with pytest.raises(SimulationError):
            FaultPlan.from_spec(
                {"radio": [{"start": 5.0, "stop": 2.0, "loss_rate": 0.5}]}
            )
        with pytest.raises(SimulationError):
            FaultPlan.from_spec(
                {"corruption": [{"start": 0.0, "stop": 1.0, "probability": 2.0}]}
            )
        with pytest.raises(SimulationError):
            FaultPlan.from_spec({"kgc_outages": [{"start": 3.0, "stop": 3.0}]})

    def test_non_mapping_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_spec([1, 2, 3])

    def test_unknown_victim_rejected_at_install(self):
        net = Net(line(3))
        injector = FaultInjector(
            net.sim,
            net.radio,
            net.nodes,
            list(net.nodes),
            FaultPlan(crashes=(CrashSpec(at_s=1.0, node=99),)),
        )
        with pytest.raises(SimulationError):
            injector.install()


class TestCrashChurn:
    def test_crash_breaks_route_recovery_restores_it(self):
        """The acceptance scenario: the only relay of 0->2 crashes, delivery
        stops (the break is detected and reported), and after the relay
        recovers a fresh discovery restores end-to-end delivery."""
        plan = FaultPlan(
            crashes=(CrashSpec(at_s=3.0, node=1, recover_at_s=8.0),)
        )
        net = Net(line(3), plan=plan)
        net.send(0, 2)
        net.run(until=2.0)
        assert net.metrics.data_received == 1  # healthy route via node 1

        net.run(until=4.0)  # node 1 is now down
        assert net.nodes[1].crashed
        net.send(0, 2, count=3)
        net.run(until=7.5)
        received_during_outage = net.metrics.data_received
        assert received_during_outage == 1  # nothing crossed the dead relay
        # The break was noticed: either an RERR fired or the discovery
        # retries exhausted and the packets were dropped without a route.
        assert (
            net.metrics.rerr_sent
            + net.metrics.dropped_no_route
            + net.metrics.rreq_retried
        ) > 0

        # Node 1 recovered at t=8 with clean state; wait out the source's
        # failed discovery (expanding-ring retries run to ~t=11.4) and its
        # backoff (RFC 3561 6.3) before offering fresh traffic.
        net.run(until=14.0)
        assert not net.nodes[1].crashed
        net.send(0, 2, count=3)
        net.run(until=20.0)
        assert net.metrics.data_received > received_during_outage

    def test_crash_rerouted_via_alternate_path(self):
        # 0-1-2 line plus alternate path 0-3-2; crashing node 1 forces the
        # repair onto node 3 with no recovery needed.
        positions = {
            0: (0.0, 0.0),
            1: (100.0, 0.0),
            2: (200.0, 0.0),
            3: (100.0, 80.0),
        }
        plan = FaultPlan(crashes=(CrashSpec(at_s=2.5, node=1),))
        net = Net(positions, plan=plan)
        net.send(0, 2)
        net.run(until=2.0)
        assert net.metrics.data_received == 1
        net.send(0, 2, count=3)
        net.run(until=12.0)
        assert net.metrics.data_received >= 3  # traffic flows via node 3
        assert net.injector.counts["fault.node_crash"] == 1

    def test_random_victims_drawn_from_churn_stream(self):
        plan = FaultPlan(crashes=(CrashSpec(at_s=1.0, count=2),))
        net_a = Net(line(6), plan=plan, seed=11)
        net_a.run(until=2.0)
        net_b = Net(line(6), plan=plan, seed=11)
        net_b.run(until=2.0)
        victims_a = [e["node"] for e in net_a.injector.log]
        victims_b = [e["node"] for e in net_b.injector.log]
        assert len(victims_a) == 2
        assert victims_a == victims_b  # same seed -> same victims

    def test_double_crash_is_idempotent(self):
        plan = FaultPlan(
            crashes=(
                CrashSpec(at_s=1.0, node=1),
                CrashSpec(at_s=2.0, node=1, recover_at_s=3.0),
            )
        )
        net = Net(line(3), plan=plan)
        net.run(until=5.0)
        assert net.injector.counts["fault.node_crash"] == 1
        assert net.injector.counts["fault.node_recover"] == 1
        assert not net.nodes[1].crashed


class TestRadioWindows:
    def test_jamming_window_blocks_delivery(self):
        plan = FaultPlan(radio_windows=(RadioWindow(0.0, 10.0, loss_rate=1.0),))
        net = Net(line(2), plan=plan)
        net.send(0, 1, count=5)
        net.run(until=9.0)
        assert net.metrics.data_received == 0  # total jamming
        net.run(until=20.0)
        net.send(0, 1, count=2)
        net.run(until=25.0)
        assert net.metrics.data_received > 0  # conditions restored

    def test_window_restores_base_conditions(self):
        plan = FaultPlan(
            radio_windows=(
                RadioWindow(1.0, 2.0, loss_rate=0.8, range_scale=0.5),
            )
        )
        net = Net(line(2), plan=plan)
        base_loss, base_range = net.radio.loss_rate, net.radio.range_m
        net.run(until=1.5)
        assert net.radio.loss_rate == 0.8
        assert net.radio.range_m == pytest.approx(base_range * 0.5)
        net.run(until=2.5)
        assert net.radio.loss_rate == base_loss
        assert net.radio.range_m == base_range


class TestKGCOutage:
    @staticmethod
    def secure_net(plan):
        return Net(
            line(3),
            plan=plan,
            node_cls=McCLSAODVNode,
            material=CryptoMaterial(226),
            hello_interval=1.0,
        )

    def test_recovery_during_outage_quarantines_until_rekey(self):
        plan = FaultPlan(
            crashes=(CrashSpec(at_s=3.0, node=1, recover_at_s=5.0),),
            kgc_outages=(KGCOutage(4.0, 9.0),),
        )
        net = self.secure_net(plan)
        net.run(until=6.0)
        # Rejoined while the KGC was down: unauthenticated quarantine.
        assert net.nodes[1].quarantined
        assert net.injector.counts["fault.quarantine"] == 1
        rejected_before = net.metrics.auth_rejected
        net.run(until=8.5)
        # Its HELLOs carry unverifiable tags; the neighbours reject them.
        assert net.metrics.auth_rejected > rejected_before
        assert net.nodes[0].table.lookup(1, net.sim.now) is None
        net.run(until=12.0)
        # KGC back at t=9: re-keyed, signatures verify, route re-learned.
        assert not net.nodes[1].quarantined
        assert net.injector.counts["fault.rekey"] == 1
        assert net.nodes[0].table.lookup(1, net.sim.now) is not None

    def test_recovery_outside_outage_needs_no_quarantine(self):
        plan = FaultPlan(
            crashes=(CrashSpec(at_s=3.0, node=1, recover_at_s=10.0),),
            kgc_outages=(KGCOutage(4.0, 9.0),),
        )
        net = self.secure_net(plan)
        net.run(until=12.0)
        assert not net.nodes[1].quarantined
        assert "fault.quarantine" not in net.injector.counts


class TestFrameCorruption:
    def test_corrupted_control_frames_rejected_not_crashing(self):
        config = ScenarioConfig(
            seed=5,
            protocol="mccls",
            faults=FaultPlan(
                corruption_windows=(CorruptionWindow(0.0, 15.0, 0.3),)
            ),
            **FAST,
        )
        result = run_scenario(config)  # must not raise anywhere
        assert result.fault_summary["fault.frame_corrupt"] > 0
        assert result.metrics.auth_rejected > 0
        report = result.report()
        assert 0.0 <= report["packet_delivery_ratio"] <= 1.0

    def test_corruption_drops_unauthenticated_frames(self):
        config = ScenarioConfig(
            seed=5,
            protocol="aodv",
            faults=FaultPlan(
                corruption_windows=(CorruptionWindow(0.0, 15.0, 0.3),)
            ),
            **FAST,
        )
        result = run_scenario(config)
        events = [
            e for e in result.fault_events if e["event"] == "fault.frame_corrupt"
        ]
        assert events
        # No AuthTag to damage: every corrupted plain-AODV frame is a
        # link-layer checksum drop.
        assert all(e["dropped"] for e in events)

    def test_real_crypto_corruption_exercises_wire_bytes(self):
        """Real-crypto corruption bit-flips actual encoded signatures and
        pushes them through the defensive decoder and verifier."""
        config = ScenarioConfig(
            seed=5,
            protocol="mccls",
            real_crypto=True,
            sim_time_s=10.0,
            n_flows=2,
            n_nodes=10,
            faults=FaultPlan(
                corruption_windows=(CorruptionWindow(0.0, 10.0, 0.4),)
            ),
        )
        result = run_scenario(config)  # must not raise anywhere
        assert result.fault_summary["fault.frame_corrupt"] > 0
        assert result.metrics.auth_rejected > 0


class TestScenarioIntegration:
    PLAN = FaultPlan(
        crashes=(CrashSpec(at_s=4.0, count=2, recover_at_s=9.0),),
        radio_windows=(RadioWindow(6.0, 8.0, loss_rate=0.7),),
        corruption_windows=(CorruptionWindow(5.0, 10.0, 0.2),),
        kgc_outages=(KGCOutage(3.0, 11.0),),
    )

    def test_same_seed_and_plan_reproduce_exactly(self):
        config = ScenarioConfig(
            seed=7, protocol="mccls", faults=self.PLAN, **FAST
        )
        first = run_scenario(config)
        second = run_scenario(config)
        assert first.report() == second.report()
        assert first.fault_events == second.fault_events
        assert first.fault_summary == second.fault_summary

    def test_different_seed_differs(self):
        config = ScenarioConfig(
            seed=7, protocol="mccls", faults=self.PLAN, **FAST
        )
        other = run_scenario(config.with_(seed=8))
        assert run_scenario(config).fault_events != other.fault_events

    def test_healthy_run_untouched_by_fault_plumbing(self):
        config = ScenarioConfig(seed=7, protocol="mccls", **FAST)
        result = run_scenario(config)
        assert result.fault_summary == {}
        assert result.fault_events == []

    def test_empty_plan_equals_no_plan(self):
        base = ScenarioConfig(seed=7, protocol="mccls", **FAST)
        healthy = run_scenario(base)
        empty = run_scenario(base.with_(faults=FaultPlan()))
        assert healthy.report() == empty.report()
