"""Shared fixtures for the test suite.

Crypto tests run on generated small BN curves (identical code paths to
BN254 at test-friendly speed); a handful of BN254 tests are marked
``slow`` but still run in a normal session.
"""

from __future__ import annotations

import random

import pytest

from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext


@pytest.fixture(scope="session")
def curve32():
    return toy_curve(32)


@pytest.fixture(scope="session")
def curve48():
    return toy_curve(48)


@pytest.fixture()
def ctx(curve48) -> PairingContext:
    return PairingContext(curve48, random.Random(0x5EED))


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)
