"""The bench-regression gate: extraction, gating directions, exit codes."""

import copy
import json

import pytest

from repro.benchdiff import (
    BenchDiffError,
    HIGHER_BETTER,
    INFO,
    LOWER_BETTER,
    compare,
    detect_kind,
    extract_metrics,
    run_benchdiff,
)

SERVICE_DOC = {
    "config": {"requests": 100},
    "enroll": {"identities": 10, "seconds": 0.5, "per_second": 20.0},
    "verify": {
        "requests": 100,
        "seconds": 2.0,
        "throughput_rps": 50.0,
        "valid": 98,
        "invalid": 2,
        "busy_retries": 0,
        "connection_errors": 0,
        "deadline_expirations": 0,
        "latency_ms": {"p50": 10.0, "p90": 20.0, "p95": 25.0, "p99": 30.0, "max": 40.0},
    },
    "server_latency_ms": {
        "request": {"count": 100, "p50": 8.0, "p90": 15.0, "p99": 22.0, "max": 30.0},
        "queue_wait": {"count": 100, "p50": 0.5, "p90": 1.0, "p99": 2.0, "max": 3.0},
    },
    "cache": {"miller": {"hits": 5, "misses": 3, "evictions": 0}},
    "ok": True,
}

PAIRING_DOC = {
    "results": [
        {
            "bits": 49,
            "curve": "toy48",
            "mccls_cold_verify": {"fp_mul": 20000, "seconds": 0.01},
            "single_pairing": {
                "optimized": {"fp_mul": 10000, "seconds": 0.005},
                "speedup": 1.5,
            },
        }
    ]
}


class TestExtraction:
    def test_detect_kind(self):
        assert detect_kind(SERVICE_DOC) == "service"
        assert detect_kind(PAIRING_DOC) == "pairing"
        with pytest.raises(BenchDiffError):
            detect_kind({"something": "else"})

    def test_service_gating_directions(self):
        _, metrics = extract_metrics(SERVICE_DOC)
        by_name = {m.name: m for m in metrics}
        assert by_name["verify.throughput_rps"].direction == HIGHER_BETTER
        assert by_name["verify.latency_ms.p50"].direction == LOWER_BETTER
        assert by_name["server.request_ms.p99"].direction == LOWER_BETTER
        # non-request server stages and cache accounting stay informational
        assert by_name["server.queue_wait_ms.p50"].direction == INFO
        assert by_name["cache.miller.hits"].direction == INFO
        assert by_name["verify.valid"].direction == INFO
        # reliability counters gate: a healthy run has zero of each
        assert by_name["verify.connection_errors"].direction == LOWER_BETTER
        assert by_name["verify.deadline_expirations"].direction == (
            LOWER_BETTER
        )

    def test_pairing_gating_directions(self):
        _, metrics = extract_metrics(PAIRING_DOC)
        by_name = {m.name: m for m in metrics}
        assert by_name["toy48.mccls_cold_verify.fp_mul"].direction == LOWER_BETTER
        assert by_name["toy48.single_pairing.optimized.fp_mul"].direction == (
            LOWER_BETTER
        )
        # wall-clock seconds never gate (machine-speed flake)
        assert by_name["toy48.mccls_cold_verify.seconds"].direction == INFO
        assert by_name["toy48.single_pairing.optimized.seconds"].direction == INFO

    def test_mixed_kinds_refused(self):
        with pytest.raises(BenchDiffError):
            compare(SERVICE_DOC, PAIRING_DOC)


class TestGate:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_self_compare_exits_zero(self, tmp_path):
        path = self._write(tmp_path, "base.json", SERVICE_DOC)
        lines = []
        assert run_benchdiff(path, path, out=lines.append) == 0
        assert "no gated regressions" in lines[0]

    def test_synthetic_20pct_throughput_regression_fails(self, tmp_path):
        regressed = copy.deepcopy(SERVICE_DOC)
        regressed["verify"]["throughput_rps"] *= 0.8
        old = self._write(tmp_path, "old.json", SERVICE_DOC)
        new = self._write(tmp_path, "new.json", regressed)
        lines = []
        assert run_benchdiff(old, new, out=lines.append) == 1
        assert "REGRESSION" in lines[0]
        assert "verify.throughput_rps" in lines[0]

    def test_throughput_improvement_passes(self, tmp_path):
        improved = copy.deepcopy(SERVICE_DOC)
        improved["verify"]["throughput_rps"] *= 1.5
        old = self._write(tmp_path, "old.json", SERVICE_DOC)
        new = self._write(tmp_path, "new.json", improved)
        assert run_benchdiff(old, new, out=lambda _: None) == 0

    def test_latency_regression_fails_and_threshold_respected(self, tmp_path):
        slower = copy.deepcopy(SERVICE_DOC)
        slower["verify"]["latency_ms"]["p50"] *= 1.15  # +15%
        old = self._write(tmp_path, "old.json", SERVICE_DOC)
        new = self._write(tmp_path, "new.json", slower)
        assert run_benchdiff(old, new, fail_over=10.0, out=lambda _: None) == 1
        assert run_benchdiff(old, new, fail_over=20.0, out=lambda _: None) == 0

    def test_info_metrics_never_gate(self, tmp_path):
        churned = copy.deepcopy(SERVICE_DOC)
        churned["cache"]["miller"]["misses"] *= 10
        churned["verify"]["seconds"] *= 5
        old = self._write(tmp_path, "old.json", SERVICE_DOC)
        new = self._write(tmp_path, "new.json", churned)
        assert run_benchdiff(old, new, out=lambda _: None) == 0

    def test_reliability_counters_regressing_from_zero_fail(self, tmp_path):
        """Zero baseline -> any nonzero candidate is an infinite-percent
        regression, so no threshold can wave it through."""
        old = self._write(tmp_path, "old.json", SERVICE_DOC)
        for key in ("connection_errors", "deadline_expirations"):
            flaky = copy.deepcopy(SERVICE_DOC)
            flaky["verify"][key] = 1
            new = self._write(tmp_path, f"new_{key}.json", flaky)
            lines = []
            assert run_benchdiff(old, new, out=lines.append) == 1
            assert f"verify.{key}" in lines[0]
            # even an absurd threshold cannot excuse it
            assert run_benchdiff(
                old, new, fail_over=1e9, out=lambda _: None
            ) == 1

    def test_reliability_counters_staying_zero_pass(self, tmp_path):
        path = self._write(tmp_path, "base.json", SERVICE_DOC)
        assert run_benchdiff(path, path, out=lambda _: None) == 0

    def test_pairing_fp_mul_regression_fails(self, tmp_path):
        worse = copy.deepcopy(PAIRING_DOC)
        worse["results"][0]["mccls_cold_verify"]["fp_mul"] = 26000  # +30%
        old = self._write(tmp_path, "old.json", PAIRING_DOC)
        new = self._write(tmp_path, "new.json", worse)
        lines = []
        assert run_benchdiff(old, new, out=lines.append) == 1
        assert "toy48.mccls_cold_verify.fp_mul" in lines[0]

    def test_unreadable_inputs_exit_two(self, tmp_path):
        good = self._write(tmp_path, "good.json", SERVICE_DOC)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert run_benchdiff(good, str(bad), out=lambda _: None) == 2
        assert run_benchdiff(str(tmp_path / "missing.json"), good, out=lambda _: None) == 2

    def test_committed_baselines_self_compare_clean(self):
        from pathlib import Path

        results = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
        for baseline in ("BENCH_service.json", "BENCH_pairing.json"):
            path = str(results / baseline)
            assert run_benchdiff(path, path, out=lambda _: None) == 0


class TestCli:
    def test_cli_wiring(self, tmp_path):
        from repro.cli import main

        doc = tmp_path / "doc.json"
        doc.write_text(json.dumps(SERVICE_DOC))
        assert main(["benchdiff", str(doc), str(doc)]) == 0
        regressed = copy.deepcopy(SERVICE_DOC)
        regressed["verify"]["throughput_rps"] *= 0.5
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(regressed))
        assert main(["benchdiff", str(doc), str(worse)]) == 1
        assert main(
            ["benchdiff", str(doc), str(worse), "--fail-over", "60"]
        ) == 0
