"""Service-layer session fast path: SESSION / VERIFY_FAST end to end.

Covers the wire codecs, the gateway's bounded session table, the
handshake-then-MAC flow in-process and through real worker processes,
replay and tamper rejection, and the rekey invalidation chain (flush,
unknown-session rejection, transparent client re-handshake).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.session import EstablishedSession
from repro.errors import SerializationError, ServiceError
from repro.pairing.bn import toy_curve
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import Opcode, Status
from repro.service.server import SessionTable, VerificationGateway

CURVE = toy_curve(32)
MSG = b"steady-state route update"


def gateway_test(coro_factory, **gateway_kwargs):
    """Run one async test body against a fresh started gateway."""

    async def main():
        gateway_kwargs.setdefault("curve", CURVE)
        gateway_kwargs.setdefault("seed", 5)
        gateway = VerificationGateway(**gateway_kwargs)
        await gateway.start()
        try:
            return await coro_factory(gateway)
        finally:
            await gateway.stop()

    return asyncio.run(main())


async def connected_client(gateway) -> ServiceClient:
    client = ServiceClient(gateway.host, gateway.port)
    await client.connect()
    return client


async def established_client(gateway, identity="fast-node"):
    """Enrol + handshake; returns (client, keys)."""
    client = await connected_client(gateway)
    await client.params()
    keys = await client.enroll(identity)
    await client.start_session(keys, rng=random.Random(0xFA57))
    return client, keys


def _session(sid: bytes, identity: str = "node") -> EstablishedSession:
    return EstablishedSession(
        session_id=sid, key=b"k" * 32, client_identity=identity,
        gateway_identity="gw",
    )


class TestSessionTable:
    def test_lru_eviction_at_capacity(self):
        table = SessionTable(capacity=2, ttl_s=60.0)
        table.put(_session(b"a" * 16), now=0.0)
        table.put(_session(b"b" * 16), now=1.0)
        # touch "a" so "b" becomes the LRU victim
        assert table.get(b"a" * 16, now=2.0) is not None
        table.put(_session(b"c" * 16), now=3.0)
        assert table.evictions == 1
        assert table.get(b"b" * 16, now=4.0) is None
        assert table.get(b"a" * 16, now=4.0) is not None
        assert table.get(b"c" * 16, now=4.0) is not None

    def test_ttl_runs_from_establishment_not_last_use(self):
        table = SessionTable(capacity=8, ttl_s=10.0)
        table.put(_session(b"a" * 16), now=0.0)
        assert table.get(b"a" * 16, now=9.9) is not None  # no TTL refresh
        assert table.get(b"a" * 16, now=10.0) is None
        assert table.expirations == 1

    def test_flush_reports_count(self):
        table = SessionTable(capacity=8, ttl_s=10.0)
        for i in range(3):
            table.put(_session(bytes([i]) * 16), now=0.0)
        assert table.flush() == 3
        assert len(table) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SessionTable(capacity=0)


class TestFastPathCodecs:
    def test_fast_payload_round_trip(self):
        payload = protocol.encode_verify_fast_payload(
            "node-1", b"s" * 16, 7, MSG, b"m" * 32
        )
        request = protocol.decode_verify_fast_payload(payload)
        assert request.identity == "node-1"
        assert request.session_id == b"s" * 16
        assert request.seq == 7
        assert request.message == MSG
        assert request.mac == b"m" * 32

    def test_split_matches_decode(self):
        payload = protocol.encode_verify_fast_payload(
            "node-1", b"s" * 16, 7, MSG, b"m" * 32
        )
        assert protocol.split_verify_fast_payload(payload) == "node-1"
        with pytest.raises(SerializationError):
            protocol.split_verify_fast_payload(payload[:10])

    def test_bad_mac_width_rejected(self):
        with pytest.raises(SerializationError):
            protocol.encode_verify_fast_payload(
                "node-1", b"s" * 16, 7, MSG, b"short"
            )

    def test_truncated_payload_rejected(self):
        payload = protocol.encode_verify_fast_payload(
            "node-1", b"s" * 16, 7, MSG, b"m" * 32
        )
        with pytest.raises(SerializationError):
            protocol.decode_verify_fast_payload(payload[:-1])

    def test_mac_chunks_are_canonical(self):
        chunks = protocol.fast_verify_mac_bytes(b"s" * 16, 7, "node-1", MSG)
        assert chunks[0] == b"s" * 16
        assert int.from_bytes(chunks[1], "big") == 7
        assert chunks[2] == b"node-1"
        assert chunks[3] == MSG


class TestInProcessFastPath:
    def test_handshake_then_fast_verifies(self):
        async def body(gateway):
            client, _ = await established_client(gateway)
            try:
                assert client.session is not None
                for _ in range(3):
                    assert await client.verify_fast(MSG) is True
                stats = await client.stats()
                assert stats["sessions"]["active"] == 1
                assert stats["sessions"]["established"] == 1
                assert stats["counters"]["fast_verify_valid"] == 3
            finally:
                await client.close()

        gateway_test(body)

    def test_fast_path_burns_zero_pairings(self):
        async def body(gateway):
            client, _ = await established_client(gateway)
            try:
                before = gateway.kgc.ctx.ops.pairings
                for _ in range(5):
                    assert await client.verify_fast(MSG) is True
                assert gateway.kgc.ctx.ops.pairings == before
            finally:
                await client.close()

        gateway_test(body)

    def test_tampered_mac_is_invalid_not_error(self):
        async def body(gateway):
            client, _ = await established_client(gateway)
            try:
                session = client.session
                payload = protocol.encode_verify_fast_payload(
                    session.client_identity, session.session_id, 99, MSG,
                    b"\x00" * 32,
                )
                reply = await client._call(Opcode.VERIFY_FAST, payload)
                assert protocol.decode_verify_verdict(reply) is False
            finally:
                await client.close()

        gateway_test(body)

    def test_replayed_seq_is_invalid(self):
        async def body(gateway):
            client, _ = await established_client(gateway)
            try:
                assert await client.verify_fast(MSG) is True
                session = client.session
                mac = session.mac(
                    *protocol.fast_verify_mac_bytes(
                        session.session_id, 1, session.client_identity, MSG
                    )
                )
                payload = protocol.encode_verify_fast_payload(
                    session.client_identity, session.session_id, 1, MSG, mac
                )
                reply = await client._call(Opcode.VERIFY_FAST, payload)
                assert protocol.decode_verify_verdict(reply) is False
                stats = await client.stats()
                assert stats["counters"]["fast_verify_replays"] == 1
            finally:
                await client.close()

        gateway_test(body)

    def test_unknown_session_is_the_documented_error(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                payload = protocol.encode_verify_fast_payload(
                    "ghost", b"\x00" * 16, 1, MSG, b"\x00" * 32
                )
                with pytest.raises(ServiceError) as err:
                    await client._call(Opcode.VERIFY_FAST, payload)
                assert str(err.value) == protocol.UNKNOWN_SESSION
            finally:
                await client.close()

        gateway_test(body)

    def test_unenrolled_identity_cannot_handshake(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                await client.params()
                other = VerificationGateway(curve=CURVE, seed=9)
                foreign = other.kgc.enroll("stranger")
                with pytest.raises(ServiceError):
                    await client.start_session(
                        foreign, rng=random.Random(1)
                    )
            finally:
                await client.close()

        gateway_test(body)

    def test_session_capacity_evicts_oldest(self):
        async def body(gateway):
            first, _ = await established_client(gateway, "node-a")
            second, _ = await established_client(gateway, "node-b")
            try:
                # capacity 1: node-a's session was evicted by node-b's
                assert await second.verify_fast(MSG) is True
                stats = await second.stats()
                assert stats["sessions"]["evictions"] == 1
                assert stats["sessions"]["active"] == 1
                # node-a transparently re-handshakes (evicting node-b)
                assert await first.verify_fast(MSG) is True
            finally:
                await first.close()
                await second.close()

        gateway_test(body, session_capacity=1)

    def test_session_ttl_expiry_forces_rehandshake(self):
        async def body(gateway):
            client, _ = await established_client(gateway)
            try:
                assert await client.verify_fast(MSG) is True
                await asyncio.sleep(0.25)
                # expired server-side; the client recovers transparently
                assert await client.verify_fast(MSG) is True
                stats = await client.stats()
                assert stats["sessions"]["expirations"] == 1
                assert stats["sessions"]["established"] == 2
            finally:
                await client.close()

        gateway_test(body, session_ttl_s=0.2)


class TestRekeyInvalidation:
    def test_rekey_flushes_sessions_and_client_recovers(self):
        async def body(gateway):
            client, _ = await established_client(gateway)
            control = await connected_client(gateway)
            try:
                assert await client.verify_fast(MSG) is True
                old_session_id = client.session.session_id
                await control.rekey()
                stats = await control.stats()
                assert stats["sessions"]["active"] == 0
                assert stats["sessions"]["killed_by_rekey"] == 1
                # stale session id is rejected, then the client re-enrols
                # and re-handshakes without surfacing an error
                assert await client.verify_fast(MSG) is True
                assert client.session.session_id != old_session_id
                stats = await control.stats()
                assert stats["counters"]["fast_verify_unknown_session"] >= 1
            finally:
                await client.close()
                await control.close()

        gateway_test(body)

    def test_stats_schema_names_sessions(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                stats = await client.stats()
                assert stats["schema_version"] == 4
                section = stats["sessions"]
                for key in (
                    "active", "capacity", "ttl_s", "established",
                    "evictions", "expirations", "killed_by_rekey",
                ):
                    assert key in section
            finally:
                await client.close()

        gateway_test(body)


class TestPoolFastPath:
    def test_fast_path_through_worker_processes(self):
        async def body(gateway):
            client, _ = await established_client(gateway)
            try:
                for _ in range(3):
                    assert await client.verify_fast(MSG) is True
                # tampered MAC through the pool: invalid, not an error
                session = client.session
                payload = protocol.encode_verify_fast_payload(
                    session.client_identity, session.session_id, 50, MSG,
                    b"\x00" * 32,
                )
                reply = await client._call(Opcode.VERIFY_FAST, payload)
                assert protocol.decode_verify_verdict(reply) is False
                stats = await client.stats()
                assert stats["counters"]["fast_verify_valid"] == 3
            finally:
                await client.close()

        gateway_test(body, workers=2)

    def test_rekey_through_pool_kills_and_recovers(self):
        async def body(gateway):
            client, _ = await established_client(gateway)
            control = await connected_client(gateway)
            try:
                assert await client.verify_fast(MSG) is True
                await control.rekey()
                assert await client.verify_fast(MSG) is True
                stats = await control.stats()
                assert stats["sessions"]["killed_by_rekey"] == 1
            finally:
                await client.close()
                await control.close()

        gateway_test(body, workers=2)
