"""CBR traffic and metrics-collector tests."""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.traffic import CBRFlow, FlowSpec


def two_node_net():
    sim = Simulator(seed=1)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=200.0, broadcast_jitter_s=0.001)
    nodes = {
        i: AODVNode(i, sim, radio, StaticPosition((i * 100.0, 0.0)), metrics)
        for i in range(2)
    }
    return sim, metrics, nodes


class TestCBR:
    def test_emission_count(self):
        sim, metrics, nodes = two_node_net()
        spec = FlowSpec(
            flow_id=1,
            source=0,
            destination=1,
            interval_s=0.5,
            payload_bytes=100,
            start_s=1.0,
            stop_s=5.0,
        )
        flow = CBRFlow(sim, spec, nodes[0])
        sim.run(until=10.0)
        # Emissions at 1.0, 1.5, ..., 5.0 -> 9 packets.
        assert flow.packets_emitted == 9
        assert metrics.data_sent == 9
        assert metrics.data_received == 9

    def test_delays_recorded_per_flow(self):
        sim, metrics, nodes = two_node_net()
        spec = FlowSpec(2, 0, 1, 0.25, 64, 0.5, 2.0)
        CBRFlow(sim, spec, nodes[0])
        sim.run(until=5.0)
        assert metrics.per_flow_received.get(2, 0) > 0
        assert len(metrics.delays) == metrics.data_received

    def test_invalid_interval(self):
        sim, metrics, nodes = two_node_net()
        with pytest.raises(SimulationError):
            CBRFlow(sim, FlowSpec(1, 0, 1, 0.0, 64, 0.0, 1.0), nodes[0])

    def test_self_flow_rejected(self):
        sim, metrics, nodes = two_node_net()
        with pytest.raises(SimulationError):
            CBRFlow(sim, FlowSpec(1, 0, 0, 0.5, 64, 0.0, 1.0), nodes[0])

    def test_wrong_node_rejected(self):
        sim, metrics, nodes = two_node_net()
        with pytest.raises(SimulationError):
            CBRFlow(sim, FlowSpec(1, 0, 1, 0.5, 64, 0.0, 1.0), nodes[1])


class TestMetrics:
    def test_pdr(self):
        m = MetricsCollector()
        m.data_sent = 10
        m.record_delivery(0, 0.1)
        m.record_delivery(0, 0.2)
        assert m.packet_delivery_ratio == pytest.approx(0.2)

    def test_pdr_no_traffic(self):
        assert MetricsCollector().packet_delivery_ratio == 0.0

    def test_rreq_ratio(self):
        m = MetricsCollector()
        m.rreq_initiated = 3
        m.rreq_forwarded = 5
        m.rreq_retried = 2
        m.data_sent = 20
        m.data_forwarded = 30
        assert m.rreq_ratio == pytest.approx(10 / 50)

    def test_delay_average(self):
        m = MetricsCollector()
        m.record_delivery(0, 0.1)
        m.record_delivery(1, 0.3)
        assert m.average_end_to_end_delay == pytest.approx(0.2)

    def test_drop_ratio(self):
        m = MetricsCollector()
        m.data_sent = 50
        m.dropped_by_attacker = 5
        assert m.packet_drop_ratio == pytest.approx(0.1)

    def test_report_keys(self):
        report = MetricsCollector().report()
        for key in (
            "packet_delivery_ratio",
            "rreq_ratio",
            "end_to_end_delay",
            "packet_drop_ratio",
            "auth_rejected",
        ):
            assert key in report
