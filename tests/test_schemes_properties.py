"""Cross-scheme property tests (hypothesis) over all five CLS variants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hardened import McCLSPlus
from repro.errors import SignatureError
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.schemes.registry import scheme_class, scheme_names

CURVE = toy_curve(32)
ALL_SCHEMES = scheme_names()


def make(name, seed=0xFACE):
    ctx = PairingContext(CURVE, random.Random(seed))
    if name == "mccls-plus":
        return McCLSPlus(ctx)
    return scheme_class(name)(ctx)


identities = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=24,
)
messages = st.binary(min_size=0, max_size=128)


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestUniversalProperties:
    @given(identity=identities, message=messages)
    @settings(max_examples=8, deadline=None)
    def test_sign_verify_roundtrip(self, name, identity, message):
        scheme = make(name)
        keys = scheme.generate_user_keys(identity)
        sig = scheme.sign(message, keys)
        assert scheme.verify(
            message, sig, keys.identity, keys.public_key, keys.public_key_extra
        )

    @given(message=messages, other=messages)
    @settings(max_examples=8, deadline=None)
    def test_message_binding(self, name, message, other):
        if message == other:
            return
        scheme = make(name)
        keys = scheme.generate_user_keys("prop")
        sig = scheme.sign(message, keys)
        assert not scheme.verify(
            other, sig, keys.identity, keys.public_key, keys.public_key_extra
        )

    def test_signature_objects_distinct_types(self, name):
        """A signature from any OTHER scheme must raise SignatureError
        (never silently verify) when fed to this scheme's verifier."""
        scheme = make(name)
        keys = scheme.generate_user_keys("prop")
        for other_name in ALL_SCHEMES:
            if other_name == name:
                continue
            if {name, other_name} == {"mccls", "mccls-plus"}:
                continue  # intentionally share the signature type
            other = make(other_name)
            other_keys = other.generate_user_keys("prop")
            foreign_sig = other.sign(b"m", other_keys)
            with pytest.raises(SignatureError):
                scheme.verify(
                    b"m",
                    foreign_sig,
                    keys.identity,
                    keys.public_key,
                    keys.public_key_extra,
                )

    def test_identity_binding(self, name):
        scheme = make(name)
        alice = scheme.generate_user_keys("alice")
        bob = scheme.generate_user_keys("bob")
        sig = scheme.sign(b"m", alice)
        assert not scheme.verify(
            b"m", sig, bob.identity, bob.public_key, bob.public_key_extra
        )

    def test_two_kgcs_are_separate_worlds(self, name):
        kgc_a = make(name, seed=1)
        kgc_b = make(name, seed=2)
        keys = kgc_a.generate_user_keys("alice")
        sig = kgc_a.sign(b"m", keys)
        assert not kgc_b.verify(
            b"m", sig, keys.identity, keys.public_key, keys.public_key_extra
        )


class TestMcCLSPlusCompatibility:
    def test_plus_signatures_verify_under_plain_mccls(self):
        """McCLS+ only ADDS a check: its signatures are plain McCLS
        signatures and remain valid under the original verifier."""
        from repro.core.mccls import McCLS

        ctx = PairingContext(CURVE, random.Random(0xAB))
        plus = McCLSPlus(ctx, master_secret=424242)
        plain = McCLS(ctx, master_secret=424242)
        keys = plus.generate_user_keys("compat")
        sig = plus.sign(b"m", keys)
        assert plain.verify(b"m", sig, keys.identity, keys.public_key)
