"""Unit and property tests for the number-theory helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.pairing.numbers import (
    inverse_mod,
    is_probable_prime,
    legendre_symbol,
    sqrt_mod,
)

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 101, 257, 65537]
SMALL_COMPOSITES = [1, 4, 6, 9, 15, 100, 65536, 561, 1105, 6601]  # incl. Carmichael
LARGE_PRIME = 2**127 - 1  # Mersenne prime
P_3MOD4 = 1000003  # prime = 3 (mod 4)
P_1MOD4 = 1000033  # prime = 1 (mod 4)


class TestPrimality:
    def test_small_primes(self):
        for p in SMALL_PRIMES:
            assert is_probable_prime(p), p

    def test_small_composites(self):
        for n in SMALL_COMPOSITES:
            assert not is_probable_prime(n), n

    def test_negative_and_zero(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(-7)

    def test_large_mersenne_prime(self):
        assert is_probable_prime(LARGE_PRIME)

    def test_large_composite(self):
        assert not is_probable_prime(LARGE_PRIME * (2**61 - 1))

    def test_bn254_parameters_are_prime(self):
        from repro.pairing.bn import BN254_T, bn_parameters

        p, n, _ = bn_parameters(BN254_T)
        assert p.bit_length() == 254
        assert n.bit_length() == 254

    @given(st.integers(min_value=2, max_value=10_000))
    def test_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_probable_prime(n) == by_trial


class TestInverse:
    @given(st.integers(min_value=1, max_value=P_3MOD4 - 1))
    def test_inverse_roundtrip(self, a):
        inv = inverse_mod(a, P_3MOD4)
        assert (a * inv) % P_3MOD4 == 1

    def test_zero_raises(self):
        with pytest.raises(FieldError):
            inverse_mod(0, P_3MOD4)

    def test_multiple_of_modulus_raises(self):
        with pytest.raises(FieldError):
            inverse_mod(3 * P_3MOD4, P_3MOD4)

    def test_negative_input(self):
        inv = inverse_mod(-5, P_3MOD4)
        assert (-5 * inv) % P_3MOD4 == 1


class TestLegendre:
    def test_zero(self):
        assert legendre_symbol(0, 7) == 0

    def test_known_values_mod_7(self):
        # squares mod 7: 1, 2, 4
        assert legendre_symbol(1, 7) == 1
        assert legendre_symbol(2, 7) == 1
        assert legendre_symbol(4, 7) == 1
        assert legendre_symbol(3, 7) == -1
        assert legendre_symbol(5, 7) == -1

    @given(st.integers(min_value=1, max_value=P_3MOD4 - 1))
    def test_squares_are_residues(self, a):
        assert legendre_symbol(a * a, P_3MOD4) == 1


class TestSqrt:
    @pytest.mark.parametrize("p", [P_3MOD4, P_1MOD4, 7, 13, 2**61 - 1])
    def test_sqrt_of_squares(self, p):
        for a in (1, 2, 3, 5, 1234, p - 1):
            square = (a * a) % p
            root = sqrt_mod(square, p)
            assert (root * root) % p == square

    def test_sqrt_zero(self):
        assert sqrt_mod(0, P_3MOD4) == 0

    def test_non_residue_raises(self):
        # 3 is a non-residue mod 7
        with pytest.raises(FieldError):
            sqrt_mod(3, 7)

    @given(st.integers(min_value=1, max_value=P_1MOD4 - 1))
    @settings(max_examples=50)
    def test_tonelli_shanks_path(self, a):
        square = (a * a) % P_1MOD4
        root = sqrt_mod(square, P_1MOD4)
        assert (root * root) % P_1MOD4 == square
