"""Worker pool: verdict correctness, affinity, supervision, rekey.

The process tests spawn real ``spawn``-context workers over a toy curve,
so they exercise the actual pickle/pipe/reader-thread plumbing; the
policy tests drive :class:`WorkerSupervisor` against a fake pool so every
sweep branch is hit deterministically without a single fork.
"""

from __future__ import annotations

import asyncio
import random
import time

import pytest

from repro.core.batch import McCLSBatchVerifier
from repro.core.mccls import McCLS
from repro.errors import ServiceError, WorkerLostError
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.service import protocol
from repro.service.pool import (
    VerifyWorkerPool,
    _verify_items,
    merge_cache_stats,
)
from repro.service.supervisor import RestartBackoff, WorkerSupervisor

CURVE = toy_curve(32)
MSG = b"pool message"


def _fresh_scheme(seed: int = 11) -> McCLS:
    return McCLS(PairingContext(CURVE, random.Random(seed)))


SCHEME = _fresh_scheme()
PARAMS = protocol.params_document(
    "mccls", CURVE, SCHEME.p_pub_g1, SCHEME.p_pub_g2
)
KEYS = SCHEME.generate_user_keys("pool-id")
GOOD = protocol.encode_verify_payload(
    CURVE, "pool-id", KEYS.public_key, MSG, SCHEME.sign(MSG, KEYS)
)


def _pool(size: int = 2, **kwargs) -> VerifyWorkerPool:
    kwargs.setdefault("heartbeat_interval_s", 0.05)
    kwargs.setdefault("heartbeat_timeout_s", 1.5)
    kwargs.setdefault(
        "backoff", RestartBackoff(base_s=0.05, max_s=0.1, jitter=0.0)
    )
    return VerifyWorkerPool(PARAMS, size, **kwargs)


class TestMergeCacheStats:
    def test_counters_add_peaks_max_bounds_latest(self):
        merged = merge_cache_stats(
            {"miller": {"hits": 2, "misses": 1, "evictions": 0,
                        "peak_size": 4, "size": 4, "maxsize": 8}},
            {"miller": {"hits": 3, "misses": 2, "evictions": 1,
                        "peak_size": 7, "size": 2, "maxsize": 16},
             "pairing": {"hits": 1, "misses": 0, "evictions": 0,
                         "peak_size": 1}},
        )
        assert merged["miller"]["hits"] == 5
        assert merged["miller"]["misses"] == 3
        assert merged["miller"]["evictions"] == 1
        assert merged["miller"]["peak_size"] == 7
        # size/maxsize reflect the latest document naming them
        assert merged["miller"]["size"] == 2
        assert merged["miller"]["maxsize"] == 16
        assert merged["pairing"]["hits"] == 1

    def test_empty_input_is_empty(self):
        assert merge_cache_stats() == {}
        assert merge_cache_stats({}, {}) == {}


class TestVerifyItems:
    """The worker's crypto kernel, driven in-process (no fork)."""

    def _payload(self, message: bytes, forged: bool = False) -> bytes:
        signature = SCHEME.sign(b"forged" if forged else message, KEYS)
        return protocol.encode_verify_payload(
            CURVE, "pool-id", KEYS.public_key, message, signature
        )

    def test_clean_group_batches_without_fallback(self):
        batcher = McCLSBatchVerifier(SCHEME)
        payloads = [self._payload(b"m%d" % i) for i in range(3)]
        results, pairing_s, fallback = _verify_items(
            CURVE, SCHEME, batcher, payloads
        )
        assert results == [("ok", True)] * 3
        assert not fallback
        assert pairing_s >= 0

    def test_tampered_member_gets_exact_verdict_via_bisection(self):
        batcher = McCLSBatchVerifier(SCHEME)
        payloads = [
            self._payload(b"a"),
            self._payload(b"b", forged=True),
            self._payload(b"c"),
        ]
        results, _pairing_s, fallback = _verify_items(
            CURVE, SCHEME, batcher, payloads
        )
        # The anchored fold isolates the forged member by bisection —
        # exact per-item verdicts without a whole-group pairing fallback.
        assert not fallback
        assert results == [("ok", True), ("ok", False), ("ok", True)]

    def test_malformed_payload_is_err_item_not_crash(self):
        batcher = McCLSBatchVerifier(SCHEME)
        results, _pairing_s, _fallback = _verify_items(
            CURVE, SCHEME, batcher, [b"\xff\x00", self._payload(b"ok")]
        )
        assert results[0][0] == "err"
        assert results[1] == ("ok", True)


class TestPoolProcesses:
    def test_verify_affinity_and_rekey_end_to_end(self):
        async def main():
            pool = await _pool(size=2).start()
            try:
                results, _pairing_s, fallback = await pool.submit(
                    "pool-id", [GOOD] * 3
                )
                assert results == [("ok", True)] * 3
                assert not fallback

                forged = protocol.encode_verify_payload(
                    CURVE, "pool-id", KEYS.public_key, b"other",
                    SCHEME.sign(MSG, KEYS),
                )
                results, _s, _f = await pool.submit("pool-id", [forged])
                assert results == [("ok", False)]

                results, _s, _f = await pool.submit("pool-id", [b"\xff"])
                assert results[0][0] == "err"

                # Rekey: workers flip to the new params in submit order.
                fresh = _fresh_scheme(99)
                await pool.broadcast_params(
                    protocol.params_document(
                        "mccls", CURVE, fresh.p_pub_g1, fresh.p_pub_g2
                    )
                )
                results, _s, _f = await pool.submit("pool-id", [GOOD])
                assert results == [("ok", False)]  # old master is dead
                keys2 = fresh.generate_user_keys("pool-id")
                good2 = protocol.encode_verify_payload(
                    CURVE, "pool-id", keys2.public_key, MSG,
                    fresh.sign(MSG, keys2),
                )
                results, _s, _f = await pool.submit("pool-id", [good2])
                assert results == [("ok", True)]

                assert pool.counters["jobs_done"] == 5
                stats = pool.stats()
                assert stats["size"] == 2
                # Identity affinity: one worker owned every group.
                assert sorted(
                    w["jobs_done"] for w in stats["workers"]
                ) == [0, 5]
                assert pool.worker_cache_stats()  # workers reported caches
            finally:
                await pool.stop()

        asyncio.run(main())

    def test_hung_worker_is_killed_and_respawned(self):
        async def main():
            pool = await _pool(
                size=1, job_timeout_s=0.3, submit_wait_s=5.0
            ).start()
            try:
                handle = pool.handles()[0]
                first_pid = handle.pid
                handle.conn.send(("sleep", 3.0))  # chaos hook: hard hang
                with pytest.raises(WorkerLostError):
                    await pool.submit("pool-id", [GOOD])
                assert pool.supervisor.counters["job_timeouts"] == 1
                assert pool.counters["worker_lost_jobs"] == 1

                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    if handle.state == "ready" and handle.pid != first_pid:
                        break
                    await asyncio.sleep(0.05)
                assert handle.state == "ready"
                assert handle.pid != first_pid
                assert pool.supervisor.counters["restarts"] >= 1
                events = [e["event"] for e in pool.supervisor.log]
                assert "lost" in events and "restart" in events

                # The respawned worker serves the same key material.
                results, _s, _f = await pool.submit("pool-id", [GOOD])
                assert results == [("ok", True)]
            finally:
                await pool.stop()

        asyncio.run(main())

    def test_stopped_pool_refuses_work(self):
        async def main():
            pool = _pool(size=1)
            await pool.stop()
            with pytest.raises(WorkerLostError):
                await pool.submit("x", [GOOD])

        asyncio.run(main())

    def test_zero_size_rejected(self):
        with pytest.raises(ServiceError):
            VerifyWorkerPool(PARAMS, 0)


class _FakeHandle:
    def __init__(self, index=0):
        self.index = index
        self.state = "ready"
        self.process = None
        self.pending = {}
        self.started_at = 0.0
        self.last_pong = 0.0
        self.restarts = 0
        self.restart_at = None

    def oldest_job_age(self, now):
        if not self.pending:
            return None
        return now - min(started for _f, started in self.pending.values())


class _FakePool:
    def __init__(self, handle):
        self.handle = handle
        self.lost = []
        self.respawned = 0
        self.pinged = 0

    def handles(self):
        return [self.handle]

    def declare_lost(self, handle, reason):
        handle.state = "dead"
        self.lost.append(reason)

    def respawn(self, handle):
        handle.state = "ready"
        self.respawned += 1

    def ping(self, handle):
        self.pinged += 1


class TestSupervisorPolicy:
    def _supervisor(self, handle, **kwargs):
        pool = _FakePool(handle)
        kwargs.setdefault("job_timeout_s", 1.0)
        kwargs.setdefault("heartbeat_timeout_s", 0.5)
        return pool, WorkerSupervisor(pool, **kwargs)

    def test_healthy_worker_just_gets_pinged(self):
        handle = _FakeHandle()
        handle.last_pong = 10.0
        pool, supervisor = self._supervisor(handle)
        supervisor.sweep(10.1)
        assert pool.pinged == 1 and not pool.lost

    def test_crash_detected_via_exitcode(self):
        class _Dead:
            exitcode = -9

        handle = _FakeHandle()
        handle.process = _Dead()
        pool, supervisor = self._supervisor(handle)
        supervisor.sweep(0.0)
        assert supervisor.counters["crashes"] == 1
        assert "code -9" in pool.lost[0]

    def test_job_deadline_kills_owner(self):
        handle = _FakeHandle()
        handle.last_pong = 100.0
        handle.pending[1] = (None, 100.0)
        pool, supervisor = self._supervisor(handle, job_timeout_s=1.0)
        supervisor.sweep(101.5)
        assert supervisor.counters["job_timeouts"] == 1
        assert "deadline" in pool.lost[0]

    def test_silent_idle_worker_is_hung_but_busy_one_is_not(self):
        busy = _FakeHandle()
        busy.last_pong = 100.0
        busy.pending[1] = (None, 100.4)
        pool, supervisor = self._supervisor(
            busy, heartbeat_timeout_s=0.5, job_timeout_s=10.0
        )
        supervisor.sweep(101.0)  # silent, but a young job is in flight
        assert supervisor.counters["hangs"] == 0 and not pool.lost

        idle = _FakeHandle()
        idle.last_pong = 100.0
        pool, supervisor = self._supervisor(idle, heartbeat_timeout_s=0.5)
        supervisor.sweep(101.0)
        assert supervisor.counters["hangs"] == 1

    def test_dead_worker_respawns_only_after_backoff(self):
        handle = _FakeHandle()
        handle.state = "dead"
        handle.restart_at = 5.0
        pool, supervisor = self._supervisor(handle)
        supervisor.sweep(4.9)
        assert pool.respawned == 0
        supervisor.sweep(5.0)
        assert pool.respawned == 1
        assert supervisor.counters["restarts"] == 1

    def test_restart_backoff_grows_caps_and_jitters(self):
        backoff = RestartBackoff(
            base_s=0.1, max_s=0.5, multiplier=2.0, jitter=0.0
        )
        rng = random.Random(3)
        assert [backoff.delay_s(k, rng) for k in range(4)] == [
            0.1, 0.2, 0.4, 0.5,
        ]
        jittered = RestartBackoff(
            base_s=0.1, max_s=2.0, jitter=0.5
        ).delay_s(0, random.Random(3))
        assert 0.05 <= jittered <= 0.15

    def test_supervision_log_uses_monotonic_clock(self, monkeypatch):
        """A wall-clock step (NTP, suspend/resume) must not skew the log.

        ``note()`` stamps ``at`` from ``time.monotonic()`` — the clock the
        rest of the service (deadlines, backoff, heartbeats) runs on — and
        keeps wall time only as the display-only ISO ``wall`` field.
        """
        from datetime import datetime
        from repro.service import supervisor as supervisor_mod

        handle = _FakeHandle()
        _pool, supervisor = self._supervisor(handle)

        fake = {"monotonic": 1000.0, "wall": 2_000_000.0}
        monkeypatch.setattr(
            supervisor_mod.time, "monotonic", lambda: fake["monotonic"]
        )
        monkeypatch.setattr(
            supervisor_mod.time, "time", lambda: fake["wall"]
        )
        supervisor.note("restart", 0, restarts=1)
        fake["monotonic"] += 1.0
        fake["wall"] -= 3600.0  # wall clock steps an hour backwards
        supervisor.note("lost", 0, reason="test")

        first, second = supervisor.log[-2:]
        assert first["at"] == 1000.0 and second["at"] == 1001.0
        assert second["at"] > first["at"]  # ordering survives the step
        for entry in (first, second):
            # display-only ISO-8601 UTC wall stamp rides along
            assert datetime.fromisoformat(entry["wall"]).tzinfo is not None

    def test_supervision_log_bounded(self):
        handle = _FakeHandle()
        _pool, supervisor = self._supervisor(handle)
        for k in range(supervisor.LOG_LIMIT + 10):
            supervisor.note("ping", 0, seq=k)
        assert len(supervisor.log) == supervisor.LOG_LIMIT
        assert supervisor.log[-1]["seq"] == supervisor.LOG_LIMIT + 9
