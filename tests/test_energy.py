"""Energy-model tests."""

import pytest

from repro.netsim.energy import EnergyMeter, measure_scenario_energy
from repro.netsim.scenario import ScenarioConfig

FAST = dict(sim_time_s=15.0, n_flows=3, n_nodes=14, seed=5)


class TestMeter:
    def test_transmission_energy_accumulates(self):
        from repro.netsim.engine import Simulator
        from repro.netsim.mobility import StaticPosition
        from repro.netsim.packets import BROADCAST, DataPacket, Frame
        from repro.netsim.radio import RadioMedium

        sim = Simulator(seed=1)
        radio = RadioMedium(sim, range_m=200.0, broadcast_jitter_s=0.0)
        meter = EnergyMeter()
        meter.attach_radio(radio)
        radio.attach(0, StaticPosition((0, 0)), lambda *a: None)
        radio.attach(1, StaticPosition((50, 0)), lambda *a: None)
        frame = Frame(0, BROADCAST, DataPacket(0, 0, 0, 1, 1000, 0.0))
        radio.transmit(frame)
        sim.run()
        assert meter.tx_joules[0] == pytest.approx(
            frame.size_bytes * meter.tx_joules_per_byte
        )
        assert meter.rx_joules[1] == pytest.approx(
            frame.size_bytes * meter.rx_joules_per_byte
        )
        assert meter.node_joules(0) > meter.node_joules(1)

    def test_breakdown_sums(self):
        meter = EnergyMeter()
        meter.tx_joules = {0: 1.0}
        meter.rx_joules = {1: 2.0}
        meter.cpu_joules = {0: 3.0}
        assert meter.total_joules() == 6.0
        assert meter.breakdown()["total_joules"] == 6.0


class TestScenarioEnergy:
    def test_authentication_costs_energy(self):
        plain = measure_scenario_energy(ScenarioConfig(**FAST))
        secured = measure_scenario_energy(
            ScenarioConfig(protocol="mccls", **FAST)
        )
        pki = measure_scenario_energy(ScenarioConfig(protocol="pki", **FAST))
        # Security costs energy; certificates cost the most radio energy.
        assert secured["total_joules"] > plain["total_joules"]
        assert pki["tx_joules"] > secured["tx_joules"]
        # Crypto CPU energy only exists for the authenticated protocols.
        assert plain["cpu_joules"] == 0.0
        assert secured["cpu_joules"] > 0.0

    def test_joules_per_delivered_packet(self):
        report = measure_scenario_energy(ScenarioConfig(**FAST))
        assert report["delivered_packets"] > 0
        assert 0 < report["joules_per_delivered_packet"] < 1.0
