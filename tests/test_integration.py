"""Cross-layer integration tests: real crypto + real protocol + attacks.

These run the WHOLE stack together - actual McCLS signatures on a real BN
curve authenticate actual AODV control packets carried by the simulated
radio over mobile topologies - and are the closest thing to the paper's
QualNet campaign in miniature.
"""

import random

import pytest

from repro.core.mccls import McCLS
from repro.core.serialization import mccls_signature_size
from repro.netsim.attacks import BlackHoleNode
from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import RandomWaypoint
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.secure_aodv import (
    CryptoMaterial,
    McCLSAODVNode,
    identity_of,
)
from repro.netsim.scenario import ScenarioConfig, run_scenario
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext


@pytest.mark.slow
class TestRealCryptoMobileNetwork:
    def build(self, n_nodes=8, with_blackhole=False, seed=21):
        curve = toy_curve(32)
        sim = Simulator(seed=seed)
        metrics = MetricsCollector()
        radio = RadioMedium(sim, range_m=300.0, broadcast_jitter_s=0.005)
        ctx = PairingContext(curve, random.Random(seed))
        scheme = McCLS(ctx, precompute_s=True)
        directory = {}
        materials = {}
        honest = list(range(n_nodes))
        for node_id in honest:
            keys = scheme.generate_user_keys(identity_of(node_id))
            directory[keys.identity] = keys.public_key
            materials[node_id] = CryptoMaterial(
                signature_bytes=mccls_signature_size(curve),
                scheme=scheme,
                keys=keys,
                resolve_public_key=directory.get,
            )
        nodes = {}
        for node_id in honest:
            mobility = RandomWaypoint(
                600.0, 300.0, 3.0, sim.rng(f"m{node_id}"), pause_time=0.0
            )
            nodes[node_id] = McCLSAODVNode(
                node_id,
                sim,
                radio,
                mobility,
                metrics,
                material=materials[node_id],
            )
        if with_blackhole:
            mobility = RandomWaypoint(600.0, 300.0, 3.0, sim.rng("m-atk"))
            nodes[99] = BlackHoleNode(
                99,
                sim,
                radio,
                mobility,
                metrics,
                signature_bytes=mccls_signature_size(curve),
                fake_seq_boost=100,
                reply_radius_hops=5,
            )
        return sim, metrics, nodes

    def test_mobile_delivery_with_real_signatures(self):
        sim, metrics, nodes = self.build()
        for seq in range(5):
            sim.schedule(
                1.0 + seq,
                lambda s=seq: nodes[0].send_data(
                    DataPacket(0, s, 0, 5, 256, sim.now)
                ),
            )
        sim.run(until=20.0)
        assert metrics.data_received >= 3  # mobility may cost a packet or two
        assert metrics.auth_rejected == 0

    def test_real_blackhole_fully_rejected(self):
        sim, metrics, nodes = self.build(with_blackhole=True)
        for seq in range(5):
            sim.schedule(
                1.0 + seq,
                lambda s=seq: nodes[1].send_data(
                    DataPacket(0, s, 1, 6, 256, sim.now)
                ),
            )
        sim.run(until=20.0)
        assert metrics.dropped_by_attacker == 0
        # The black hole did try (its RREPs were heard and rejected) unless
        # it never overheard a flood; either way no damage occurred.
        assert metrics.data_received >= 3


class TestScenarioMatrixConsistency:
    """Invariants that must hold across the whole scenario matrix."""

    FAST = dict(sim_time_s=20.0, n_flows=3, n_nodes=14)

    @pytest.mark.parametrize("seed", [1, 7])
    def test_conservation_of_packets(self, seed):
        report = run_scenario(ScenarioConfig(seed=seed, **self.FAST)).report()
        accounted = (
            report["data_received"]
            + report["dropped_by_attacker"]
            + report["dropped_no_route"]
        )
        # Some packets may be in flight / lost to radio loss, but the
        # accounted outcomes can never exceed what sources emitted plus
        # buffered flushes.
        assert report["data_received"] <= report["data_sent"]
        assert accounted <= report["data_sent"] * 1.05 + 5

    @pytest.mark.parametrize("protocol", ["aodv", "mccls", "pki"])
    def test_no_attacker_drops_without_attackers(self, protocol):
        report = run_scenario(
            ScenarioConfig(protocol=protocol, seed=2, **self.FAST)
        ).report()
        assert report["dropped_by_attacker"] == 0.0
        assert report["fake_rreps_sent"] == 0.0

    @pytest.mark.parametrize(
        "attack", ["blackhole", "rushing", "wormhole", "blackhole-cryptanalyst"]
    )
    def test_auth_layer_untriggered_in_plain_aodv(self, attack):
        report = run_scenario(
            ScenarioConfig(attack=attack, seed=2, **self.FAST)
        ).report()
        assert report["auth_rejected"] == 0.0

    def test_hello_option_does_not_break_delivery(self):
        report = run_scenario(
            ScenarioConfig(seed=2, hello_interval=1.0, **self.FAST)
        ).report()
        assert report["packet_delivery_ratio"] > 0.6

    def test_seed_isolation_between_protocols(self):
        """Same seed => same flows/mobility => comparable runs: the data
        sent by sources must be identical across protocol variants."""
        sent = {
            protocol: run_scenario(
                ScenarioConfig(protocol=protocol, seed=4, **self.FAST)
            ).report()["data_sent"]
            for protocol in ("aodv", "mccls")
        }
        assert sent["aodv"] == sent["mccls"]
