"""Hash-to-group and hash-to-scalar tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pairing.bn import toy_curve
from repro.pairing.hashing import (
    hash_h2,
    hash_identity,
    hash_to_g1,
    hash_to_g2,
    hash_to_scalar,
)

CURVE = toy_curve(32)


class TestHashToG1:
    def test_on_curve_and_in_subgroup(self):
        point = hash_to_g1(CURVE, b"test", "alice")
        assert point.is_on_curve()
        assert CURVE.in_g1(point)

    def test_deterministic(self):
        assert hash_to_g1(CURVE, b"d", "x") == hash_to_g1(CURVE, b"d", "x")

    def test_domain_separation(self):
        assert hash_to_g1(CURVE, b"a", "x") != hash_to_g1(CURVE, b"b", "x")

    def test_input_separation(self):
        assert hash_to_g1(CURVE, b"d", "x") != hash_to_g1(CURVE, b"d", "y")

    @given(st.binary(max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_always_valid(self, data):
        point = hash_to_g1(CURVE, b"prop", data)
        assert CURVE.in_g1(point)

    def test_no_length_extension_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc") - encodings are framed.
        assert hash_to_g1(CURVE, b"d", "ab", "c") != hash_to_g1(CURVE, b"d", "a", "bc")

    def test_mixed_input_types(self):
        point = hash_to_g1(CURVE, b"d", b"bytes", "str", 12345, CURVE.g1)
        assert CURVE.in_g1(point)

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            hash_to_g1(CURVE, b"d", 3.14)


class TestHashToG2:
    def test_on_twist_and_in_subgroup(self):
        point = hash_to_g2(CURVE, b"test", "bob")
        assert point.is_on_curve()
        assert CURVE.in_g2(point)

    def test_deterministic(self):
        assert hash_to_g2(CURVE, b"d", "x") == hash_to_g2(CURVE, b"d", "x")

    @given(st.text(max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_always_in_subgroup(self, ident):
        assert CURVE.in_g2(hash_to_g2(CURVE, b"prop", ident))

    def test_point_input(self):
        q = hash_to_g2(CURVE, b"d", "x")
        again = hash_to_g2(CURVE, b"d2", q)
        assert CURVE.in_g2(again)

    def test_infinity_point_input(self):
        inf = CURVE.g1_curve.infinity()
        assert CURVE.in_g2(hash_to_g2(CURVE, b"d", inf))


class TestHashToScalar:
    @given(st.binary(max_size=64))
    @settings(max_examples=50)
    def test_range(self, data):
        value = hash_to_scalar(CURVE, b"s", data)
        assert 1 <= value < CURVE.n

    def test_deterministic(self):
        assert hash_to_scalar(CURVE, b"s", "m") == hash_to_scalar(CURVE, b"s", "m")

    def test_distribution_sanity(self):
        values = {hash_to_scalar(CURVE, b"s", i) for i in range(200)}
        assert len(values) == 200  # no collisions over a tiny sample


class TestPaperOracles:
    def test_h1_lands_in_g2(self):
        q_id = hash_identity(CURVE, "node-7")
        assert CURVE.in_g2(q_id)

    def test_h1_accepts_bytes(self):
        assert hash_identity(CURVE, b"node-7") == hash_identity(CURVE, "node-7")

    def test_h2_binds_all_inputs(self):
        r_point = CURVE.g1 * 5
        pk = CURVE.g1 * 9
        base = hash_h2(CURVE, b"m", r_point, pk)
        assert hash_h2(CURVE, b"m2", r_point, pk) != base
        assert hash_h2(CURVE, b"m", CURVE.g1 * 6, pk) != base
        assert hash_h2(CURVE, b"m", r_point, CURVE.g1 * 10) != base
