"""Topology-analysis tests."""

import pytest

from repro.netsim.analysis import analyze_topology, connectivity_graph
from repro.netsim.scenario import ScenarioConfig

FAST = dict(sim_time_s=30.0, n_flows=3, n_nodes=14)


class TestConnectivityGraph:
    def test_edges_respect_range(self):
        positions = {0: (0, 0), 1: (100, 0), 2: (500, 0)}
        graph = connectivity_graph(positions, 150.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)

    def test_all_nodes_present(self):
        positions = {7: (0, 0), 8: (9999, 9999)}
        graph = connectivity_graph(positions, 10.0)
        assert set(graph.nodes) == {7, 8}


class TestAnalyzeTopology:
    def test_static_topology_never_changes(self):
        report = analyze_topology(ScenarioConfig(max_speed=0.0, **FAST))
        assert report.link_changes_per_second == 0.0

    def test_mobility_causes_link_churn(self):
        slow = analyze_topology(ScenarioConfig(max_speed=2.0, seed=3, **FAST))
        fast = analyze_topology(ScenarioConfig(max_speed=20.0, seed=3, **FAST))
        assert fast.link_changes_per_second > slow.link_changes_per_second
        assert slow.link_changes_per_second > 0.0

    def test_connectivity_statistics_sane(self):
        report = analyze_topology(ScenarioConfig(max_speed=10.0, **FAST))
        assert 0.0 < report.mean_degree < FAST["n_nodes"]
        assert 0.0 < report.mean_largest_component_fraction <= 1.0
        assert report.mean_flow_path_length >= 1.0

    def test_summary_keys(self):
        report = analyze_topology(ScenarioConfig(max_speed=5.0, **FAST))
        summary = report.summary()
        assert set(summary) == {
            "mean_degree",
            "largest_component_fraction",
            "link_changes_per_second",
            "mean_flow_path_length",
        }

    def test_deterministic(self):
        config = ScenarioConfig(max_speed=10.0, seed=8, **FAST)
        a = analyze_topology(config).summary()
        b = analyze_topology(config).summary()
        assert a == b

    def test_denser_network_higher_degree(self):
        sparse = analyze_topology(
            ScenarioConfig(max_speed=5.0, range_m=200.0, **FAST)
        )
        dense = analyze_topology(
            ScenarioConfig(max_speed=5.0, range_m=400.0, **FAST)
        )
        assert dense.mean_degree > sparse.mean_degree
