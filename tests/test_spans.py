"""Tracing spans: nesting, trace-id inheritance, and the zero-cost path."""

import time

import pytest

from repro import obs
from repro.obs import trace as obs_trace
from repro.obs.registry import NULL_REGISTRY
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


def _spans(sink):
    return sink.of_kind("span")


class TestSpans:
    def test_span_emits_duration_and_ids(self):
        sink = obs.ListEventSink()
        tracer = Tracer(sink)
        with tracer.span("verify", trace_id=7, cached=True):
            pass
        (span,) = _spans(sink)
        assert span["name"] == "verify"
        assert span["trace"] == 7
        assert span["parent"] is None
        assert span["cached"] is True
        assert span["ms"] >= 0.0

    def test_nested_spans_link_parent_and_inherit_trace(self):
        sink = obs.ListEventSink()
        tracer = Tracer(sink)
        with tracer.span("outer", trace_id=3):
            with tracer.span("inner"):  # inherits trace 3, parents to outer
                pass
        inner, outer = _spans(sink)  # inner closes (and emits) first
        assert (inner["name"], outer["name"]) == ("inner", "outer")
        assert inner["trace"] == outer["trace"] == 3
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_sibling_spans_share_parent(self):
        sink = obs.ListEventSink()
        tracer = Tracer(sink)
        with tracer.span("root", trace_id=1):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = _spans(sink)
        assert a["parent"] == b["parent"] == root["id"]

    def test_record_uses_caller_chosen_ids(self):
        sink = obs.ListEventSink()
        tracer = Tracer(sink)
        tracer.record(
            "queue_wait",
            trace_id=9,
            span_id="9/queue_wait",
            parent_id="9/request",
            start_s=0.0,
            dur_s=0.0015,
        )
        (span,) = _spans(sink)
        assert span["id"] == "9/queue_wait"
        assert span["parent"] == "9/request"
        assert span["ms"] == pytest.approx(1.5)

    def test_next_trace_id_monotonic_and_nonzero(self):
        first, second = obs_trace.next_trace_id(), obs_trace.next_trace_id()
        assert 0 < first < second

    def test_current_trace_id_follows_open_span(self):
        tracer = Tracer(obs.ListEventSink())
        assert obs_trace.current_trace_id() is None
        with tracer.span("outer", trace_id=42):
            assert obs_trace.current_trace_id() == 42
        assert obs_trace.current_trace_id() is None

    def test_tracing_context_installs_and_restores(self):
        sink = obs.ListEventSink()
        assert obs_trace.get_tracer() is NULL_TRACER
        with obs_trace.tracing(sink) as tracer:
            assert obs_trace.get_tracer() is tracer
            with obs_trace.span("inside", trace_id=2):
                pass
        assert obs_trace.get_tracer() is NULL_TRACER
        assert len(_spans(sink)) == 1

    def test_span_histogram_when_registry_active(self):
        sink = obs.ListEventSink()
        with obs.collecting() as registry:
            tracer = Tracer(sink)
            with tracer.span("verify", trace_id=1):
                pass
        summary = registry.histogram("span.ms", span="verify").summary()
        assert summary["count"] == 1


class TestZeroCost:
    def test_default_tracer_is_null(self):
        assert obs_trace.get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_span_is_one_shared_object(self):
        # No per-call allocation on the disabled path.
        a = NULL_TRACER.span("verify", trace_id=1)
        b = NullTracer(obs.NULL_EVENT_SINK).span("other")
        assert a is b

    def test_null_record_discards(self):
        # Must neither raise nor emit anywhere.
        assert (
            NULL_TRACER.record(
                "x", trace_id=1, span_id="s", start_s=0.0, dur_s=1.0
            )
            == ""
        )

    def test_disabled_path_adds_no_measurable_overhead(self):
        """NULL_REGISTRY + no sink: instrumented code stays effectively free.

        The bound is deliberately generous (well under the cost of one
        field multiplication) - the point is catching an accidental
        allocation-per-verify or sink write on the disabled path, not
        micro-benchmarking.
        """
        assert not NULL_REGISTRY.active
        tracer = NULL_TRACER
        rounds = 20_000
        start = time.perf_counter()
        for i in range(rounds):
            with tracer.span("verify", trace_id=i + 1):
                pass
            tracer.record(
                "stage", trace_id=i + 1, span_id="s", start_s=0.0, dur_s=0.0
            )
            NULL_REGISTRY.histogram("service.request_ms").observe(1.0)
        per_verify_us = (time.perf_counter() - start) / rounds * 1e6
        assert per_verify_us < 25.0, (
            f"{per_verify_us:.2f}us per disabled instrumented verify"
        )
