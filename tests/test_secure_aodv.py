"""McCLS-AODV tests: authentication gates, hop-by-hop signing, defences."""

import dataclasses

import pytest

from repro.core.serialization import mccls_signature_size
from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import AuthTag, DataPacket, Frame, RouteReply
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.secure_aodv import (
    CryptoMaterial,
    McCLSAODVNode,
    identity_of,
)
from repro.pairing.bn import toy_curve

SIG_BYTES = 226


class SecureNet:
    def __init__(self, positions, seed=4, rushing_defense=False, material=None):
        self.sim = Simulator(seed=seed)
        self.metrics = MetricsCollector()
        self.radio = RadioMedium(
            self.sim, range_m=150.0, broadcast_jitter_s=0.001
        )
        self.nodes = {}
        for node_id, pos in positions.items():
            mat = material[node_id] if material else CryptoMaterial(SIG_BYTES)
            self.nodes[node_id] = McCLSAODVNode(
                node_id,
                self.sim,
                self.radio,
                StaticPosition(pos),
                self.metrics,
                material=mat,
                rushing_defense=rushing_defense,
            )

    def send(self, source, destination, count=1):
        for seq in range(count):
            self.nodes[source].send_data(
                DataPacket(
                    flow_id=0,
                    seq=seq,
                    source=source,
                    destination=destination,
                    payload_bytes=128,
                    created_at=self.sim.now,
                )
            )

    def run(self, seconds=5.0):
        self.sim.run(until=self.sim.now + seconds)


def line(n, spacing=100.0):
    return {i: (i * spacing, 0.0) for i in range(n)}


class TestAuthenticatedRouting:
    def test_end_to_end_delivery(self):
        net = SecureNet(line(4))
        net.send(0, 3)
        net.run()
        assert net.metrics.data_received == 1
        assert net.metrics.auth_rejected == 0

    def test_control_messages_carry_auth(self):
        net = SecureNet(line(3))
        seen = []
        original = McCLSAODVNode.receive

        def spy(self, frame):
            seen.append(frame.payload)
            original(self, frame)

        McCLSAODVNode.receive = spy
        try:
            net.send(0, 2)
            net.run()
        finally:
            McCLSAODVNode.receive = original
        from repro.netsim.packets import RouteRequest

        rreqs = [p for p in seen if isinstance(p, RouteRequest)]
        rreps = [p for p in seen if isinstance(p, RouteReply)]
        assert rreqs and rreps
        assert all(p.auth is not None and p.hop_auth is not None for p in rreqs)
        assert all(p.auth is not None and p.hop_auth is not None for p in rreps)

    def test_forged_rrep_rejected(self):
        net = SecureNet(line(3))
        # Hand-deliver a forged RREP claiming node 2 has a fresh route.
        forged = RouteReply(
            originator=0,
            destination=2,
            destination_seq=999,
            hop_count=1,
            lifetime=30.0,
            responder=2,
            auth=AuthTag(signer=identity_of(2), size_bytes=SIG_BYTES, forged=True),
            hop_auth=AuthTag(
                signer=identity_of(1), size_bytes=SIG_BYTES, forged=True
            ),
        )
        frame = Frame(sender=1, link_destination=0, payload=forged)
        net.nodes[0].receive(frame)
        net.run(1.0)
        assert net.metrics.auth_rejected >= 1
        assert net.nodes[0].table.lookup(2, net.sim.now) is None

    def test_rrep_from_non_destination_rejected(self):
        net = SecureNet(line(3))
        impostor = RouteReply(
            originator=0,
            destination=2,
            destination_seq=999,
            hop_count=1,
            lifetime=30.0,
            responder=1,  # responder != destination: not allowed
            auth=AuthTag(signer=identity_of(1), size_bytes=SIG_BYTES),
            hop_auth=AuthTag(signer=identity_of(1), size_bytes=SIG_BYTES),
        )
        net.nodes[0].receive(Frame(sender=1, link_destination=0, payload=impostor))
        net.run(1.0)
        assert net.metrics.auth_rejected >= 1

    def test_hop_auth_must_match_frame_sender(self):
        """A replayed RREQ whose hop signature names a different forwarder is
        dropped - this is what excludes rushing attackers."""
        net = SecureNet(line(3))
        net.send(0, 2)
        net.run()
        rejected_before = net.metrics.auth_rejected
        from repro.netsim.packets import RouteRequest

        replayed = RouteRequest(
            rreq_id=77,
            originator=0,
            originator_seq=50,
            destination=2,
            destination_seq=0,
            hop_count=1,
            ttl=5,
            originated_at=net.sim.now,
            auth=AuthTag(signer=identity_of(0), size_bytes=SIG_BYTES),
            hop_auth=AuthTag(signer=identity_of(0), size_bytes=SIG_BYTES),
        )
        # Frame claims sender 1, but hop_auth is signed by node 0.
        net.nodes[2].receive(
            Frame(sender=1, link_destination=-1, payload=replayed)
        )
        net.run(0.5)
        assert net.metrics.auth_rejected == rejected_before + 1

    def test_unsigned_rreq_rejected(self):
        net = SecureNet(line(2))
        from repro.netsim.packets import RouteRequest

        naked = RouteRequest(
            rreq_id=1,
            originator=1,
            originator_seq=1,
            destination=0,
            destination_seq=0,
            hop_count=0,
            ttl=5,
            originated_at=0.0,
        )
        net.nodes[0].receive(Frame(sender=1, link_destination=-1, payload=naked))
        net.run(0.5)
        assert net.metrics.auth_rejected == 1

    def test_no_intermediate_rrep_in_secure_mode(self):
        net = SecureNet(line(4))
        assert all(
            not node.allow_intermediate_rrep for node in net.nodes.values()
        )


class TestRushingDefense:
    def test_delivery_with_defense_enabled(self):
        net = SecureNet(line(4), rushing_defense=True)
        net.send(0, 3)
        net.run()
        assert net.metrics.data_received == 1

    def test_candidates_collected(self):
        # Diamond: 0 -> {1, 2} -> 3; node 3 should record both forwarders.
        positions = {
            0: (0.0, 0.0),
            1: (100.0, 50.0),
            2: (100.0, -50.0),
            3: (200.0, 0.0),
        }
        net = SecureNet(positions, rushing_defense=True)
        net.send(0, 3)
        net.run(1.0)
        pools = net.nodes[3]._candidates
        assert pools, "destination collected no candidates"
        senders = set()
        for pool in pools.values():
            senders.update(pool)
        assert {1, 2} <= senders
        assert net.metrics.data_received == 1


class TestRealCrypto:
    @pytest.mark.slow
    def test_real_mccls_signatures_end_to_end(self):
        import random

        from repro.core.mccls import McCLS
        from repro.pairing.groups import PairingContext

        curve = toy_curve(32)
        ctx = PairingContext(curve, random.Random(99))
        scheme = McCLS(ctx, precompute_s=True)
        directory = {}
        material = {}
        for node_id in range(3):
            keys = scheme.generate_user_keys(identity_of(node_id))
            directory[keys.identity] = keys.public_key
            material[node_id] = CryptoMaterial(
                signature_bytes=mccls_signature_size(curve),
                scheme=scheme,
                keys=keys,
                resolve_public_key=directory.get,
            )
        net = SecureNet(line(3), material=material)
        net.send(0, 2)
        net.run()
        assert net.metrics.data_received == 1
        assert net.metrics.auth_rejected == 0

    @pytest.mark.slow
    def test_real_crypto_rejects_unenrolled_forger(self):
        import random

        from repro.core.mccls import McCLS
        from repro.pairing.groups import PairingContext

        curve = toy_curve(32)
        ctx = PairingContext(curve, random.Random(99))
        scheme = McCLS(ctx, precompute_s=True)
        directory = {}
        material = {}
        for node_id in range(2):
            keys = scheme.generate_user_keys(identity_of(node_id))
            directory[keys.identity] = keys.public_key
            material[node_id] = CryptoMaterial(
                signature_bytes=mccls_signature_size(curve),
                scheme=scheme,
                keys=keys,
                resolve_public_key=directory.get,
            )
        net = SecureNet(line(2), material=material)
        # An attacker-crafted RREP with a random (invalid) real signature.
        other_keys = scheme.generate_user_keys("unenrolled-attacker")
        bogus_sig = scheme.sign(b"unrelated", other_keys)
        forged = RouteReply(
            originator=0,
            destination=1,
            destination_seq=999,
            hop_count=1,
            lifetime=30.0,
            responder=1,
            auth=AuthTag(
                signer=identity_of(1),
                size_bytes=SIG_BYTES,
                signature=bogus_sig,
            ),
            hop_auth=AuthTag(
                signer=identity_of(1),
                size_bytes=SIG_BYTES,
                signature=bogus_sig,
            ),
        )
        net.nodes[0].receive(Frame(sender=1, link_destination=0, payload=forged))
        net.run(1.0)
        assert net.metrics.auth_rejected >= 1
        assert net.nodes[0].table.lookup(1, net.sim.now) is None
