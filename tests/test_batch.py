"""McCLS same-signer batch-verification tests."""

import dataclasses
import random

import pytest

from repro.core.batch import McCLSBatchVerifier
from repro.core.mccls import McCLS
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext

CURVE = toy_curve(32)


@pytest.fixture()
def setup():
    scheme = McCLS(PairingContext(CURVE, random.Random(8)), precompute_s=True)
    keys = scheme.generate_user_keys("batch@manet")
    return scheme, keys, McCLSBatchVerifier(scheme)


class TestBatch:
    def test_valid_batch(self, setup):
        scheme, keys, verifier = setup
        items = verifier.sign_batch([f"m{i}".encode() for i in range(7)], keys)
        assert verifier.verify_same_signer(items, keys.identity, keys.public_key)

    def test_empty_batch(self, setup):
        _, keys, verifier = setup
        assert verifier.verify_same_signer([], keys.identity, keys.public_key)

    def test_single_item(self, setup):
        scheme, keys, verifier = setup
        items = verifier.sign_batch([b"solo"], keys)
        assert verifier.verify_same_signer(items, keys.identity, keys.public_key)

    def test_forged_message_rejected(self, setup):
        scheme, keys, verifier = setup
        items = list(verifier.sign_batch([b"a", b"b", b"c"], keys))
        items[1] = (b"FORGED", items[1][1])
        assert not verifier.verify_same_signer(
            items, keys.identity, keys.public_key
        )

    def test_tampered_v_rejected(self, setup):
        scheme, keys, verifier = setup
        items = list(verifier.sign_batch([b"a", b"b"], keys))
        message, sig = items[0]
        items[0] = (message, dataclasses.replace(sig, v=(sig.v + 1) % CURVE.n))
        assert not verifier.verify_same_signer(
            items, keys.identity, keys.public_key
        )

    def test_swap_attack_rejected(self, setup):
        """Swapping (V, R) pairs between two signatures must not cancel out."""
        scheme, keys, verifier = setup
        (ma, sa), (mb, sb) = verifier.sign_batch([b"ma", b"mb"], keys)
        swapped = [
            (ma, dataclasses.replace(sa, v=sb.v, r=sb.r)),
            (mb, dataclasses.replace(sb, v=sa.v, r=sa.r)),
        ]
        assert not verifier.verify_same_signer(
            swapped, keys.identity, keys.public_key
        )

    def test_one_pairing_per_batch(self, setup):
        scheme, keys, verifier = setup
        items = verifier.sign_batch([f"m{i}".encode() for i in range(9)], keys)
        scheme.ctx.pair_cached(scheme.p_pub_g1, scheme.q_of(keys.identity))
        with scheme.ctx.measure() as meter:
            assert verifier.verify_same_signer(
                items, keys.identity, keys.public_key
            )
        assert meter.delta.pairings == 1

    def test_mixed_s_falls_back_to_per_item(self, setup):
        """Two different signers' signatures (different S) are still judged
        correctly by the per-item fallback path."""
        scheme, keys, verifier = setup
        other = scheme.generate_user_keys("other@manet")
        items = [
            (b"mine", scheme.sign(b"mine", keys)),
            (b"theirs", scheme.sign(b"theirs", other)),
        ]
        # Claimed signer is `keys`: the second item cannot verify under it.
        assert not verifier.verify_same_signer(
            items, keys.identity, keys.public_key
        )

    def test_mixed_s_all_valid_single_signer(self, setup):
        """precompute_s=False produces the same S anyway (it is derived),
        so craft a synthetic mixed-S batch where both verify individually."""
        scheme, keys, verifier = setup
        sig1 = scheme.sign(b"x", keys)
        sig2 = scheme.sign(b"y", keys)
        assert sig1.s == sig2.s  # derived deterministically from (x, D_ID)

    def test_s_infinity_rejected(self, setup):
        scheme, keys, verifier = setup
        items = list(verifier.sign_batch([b"a"], keys))
        message, sig = items[0]
        items[0] = (
            message,
            dataclasses.replace(sig, s=CURVE.g2_curve.infinity()),
        )
        assert not verifier.verify_same_signer(
            items, keys.identity, keys.public_key
        )
