"""McCLS same-signer and cross-signer batch-verification tests."""

import dataclasses
import random

import pytest

from repro.core.batch import McCLSBatchVerifier
from repro.core.mccls import McCLS
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext

CURVE = toy_curve(32)


@pytest.fixture()
def setup():
    scheme = McCLS(PairingContext(CURVE, random.Random(8)), precompute_s=True)
    keys = scheme.generate_user_keys("batch@manet")
    return scheme, keys, McCLSBatchVerifier(scheme)


class TestBatch:
    def test_valid_batch(self, setup):
        scheme, keys, verifier = setup
        items = verifier.sign_batch([f"m{i}".encode() for i in range(7)], keys)
        assert verifier.verify_same_signer(items, keys.identity, keys.public_key)

    def test_empty_batch(self, setup):
        _, keys, verifier = setup
        assert verifier.verify_same_signer([], keys.identity, keys.public_key)

    def test_single_item(self, setup):
        scheme, keys, verifier = setup
        items = verifier.sign_batch([b"solo"], keys)
        assert verifier.verify_same_signer(items, keys.identity, keys.public_key)

    def test_forged_message_rejected(self, setup):
        scheme, keys, verifier = setup
        items = list(verifier.sign_batch([b"a", b"b", b"c"], keys))
        items[1] = (b"FORGED", items[1][1])
        assert not verifier.verify_same_signer(
            items, keys.identity, keys.public_key
        )

    def test_tampered_v_rejected(self, setup):
        scheme, keys, verifier = setup
        items = list(verifier.sign_batch([b"a", b"b"], keys))
        message, sig = items[0]
        items[0] = (message, dataclasses.replace(sig, v=(sig.v + 1) % CURVE.n))
        assert not verifier.verify_same_signer(
            items, keys.identity, keys.public_key
        )

    def test_swap_attack_rejected(self, setup):
        """Swapping (V, R) pairs between two signatures must not cancel out."""
        scheme, keys, verifier = setup
        (ma, sa), (mb, sb) = verifier.sign_batch([b"ma", b"mb"], keys)
        swapped = [
            (ma, dataclasses.replace(sa, v=sb.v, r=sb.r)),
            (mb, dataclasses.replace(sb, v=sa.v, r=sa.r)),
        ]
        assert not verifier.verify_same_signer(
            swapped, keys.identity, keys.public_key
        )

    def test_one_pairing_per_batch(self, setup):
        scheme, keys, verifier = setup
        items = verifier.sign_batch([f"m{i}".encode() for i in range(9)], keys)
        scheme.ctx.pair_cached(scheme.p_pub_g1, scheme.q_of(keys.identity))
        with scheme.ctx.measure() as meter:
            assert verifier.verify_same_signer(
                items, keys.identity, keys.public_key
            )
        assert meter.delta.pairings == 1

    def test_mixed_s_falls_back_to_per_item(self, setup):
        """Two different signers' signatures (different S) are still judged
        correctly by the per-item fallback path."""
        scheme, keys, verifier = setup
        other = scheme.generate_user_keys("other@manet")
        items = [
            (b"mine", scheme.sign(b"mine", keys)),
            (b"theirs", scheme.sign(b"theirs", other)),
        ]
        # Claimed signer is `keys`: the second item cannot verify under it.
        assert not verifier.verify_same_signer(
            items, keys.identity, keys.public_key
        )

    def test_mixed_s_all_valid_single_signer(self, setup):
        """precompute_s=False produces the same S anyway (it is derived),
        so craft a synthetic mixed-S batch where both verify individually."""
        scheme, keys, verifier = setup
        sig1 = scheme.sign(b"x", keys)
        sig2 = scheme.sign(b"y", keys)
        assert sig1.s == sig2.s  # derived deterministically from (x, D_ID)

    def test_s_infinity_rejected(self, setup):
        scheme, keys, verifier = setup
        items = list(verifier.sign_batch([b"a"], keys))
        message, sig = items[0]
        items[0] = (
            message,
            dataclasses.replace(sig, s=CURVE.g2_curve.infinity()),
        )
        assert not verifier.verify_same_signer(
            items, keys.identity, keys.public_key
        )


def _cross_items(scheme, signers, count, tag="m"):
    items = []
    for j in range(count):
        keys = signers[j % len(signers)]
        msg = f"{tag}-{j}".encode()
        items.append(
            (msg, scheme.sign(msg, keys), keys.identity, keys.public_key)
        )
    return items


class TestCrossSigner:
    def test_all_valid_mixed_window(self, setup):
        scheme, _, verifier = setup
        signers = [scheme.generate_user_keys(f"s{i}@x") for i in range(5)]
        verdicts, stats = verifier.verify_cross_signer(
            _cross_items(scheme, signers, 20)
        )
        assert verdicts == [True] * 20
        assert stats["admitted_signers"] == 5
        assert stats["admission_pairings"] >= 1

    def test_empty_window(self, setup):
        _, _, verifier = setup
        verdicts, stats = verifier.verify_cross_signer([])
        assert verdicts == [] and stats["folds"] == 0

    def test_steady_state_is_pairing_free(self, setup):
        scheme, _, verifier = setup
        signers = [scheme.generate_user_keys(f"w{i}@x") for i in range(4)]
        verifier.verify_cross_signer(_cross_items(scheme, signers, 4, "warm"))
        with scheme.ctx.measure() as meter:
            verdicts, stats = verifier.verify_cross_signer(
                _cross_items(scheme, signers, 16, "steady")
            )
        assert verdicts == [True] * 16
        assert meter.delta.pairings == 0
        assert stats["folds"] == 1 and stats["fold_sizes"] == [16]

    def test_verdicts_match_per_item_verify(self, setup):
        scheme, _, verifier = setup
        signers = [scheme.generate_user_keys(f"v{i}@x") for i in range(3)]
        items = _cross_items(scheme, signers, 9)
        # corrupt two items in different ways
        m, sig, ident, pk = items[2]
        items[2] = (m, dataclasses.replace(sig, v=(sig.v + 1) % CURVE.n), ident, pk)
        m, sig, ident, pk = items[5]
        items[5] = (b"swapped", sig, ident, pk)
        expected = [
            scheme.verify(m, s, i, p) for m, s, i, p in items
        ]
        verdicts, stats = verifier.verify_cross_signer(items)
        assert verdicts == expected
        assert stats["bisections"] >= 1

    def test_structural_rejects_stay_false(self, setup):
        scheme, keys, verifier = setup
        good = scheme.sign(b"ok", keys)
        items = [
            (b"ok", good, keys.identity, keys.public_key),
            (b"bad-v", dataclasses.replace(good, v=0), keys.identity,
             keys.public_key),
            (b"bad-type", "not-a-signature", keys.identity, keys.public_key),
            (b"bad-s", dataclasses.replace(
                good, s=CURVE.g2_curve.infinity()), keys.identity,
             keys.public_key),
        ]
        verdicts, _ = verifier.verify_cross_signer(items)
        assert verdicts == [True, False, False, False]

    def test_anchor_cache_is_key_bound(self, setup):
        """A replaced public key must not match the stale anchor."""
        scheme, _, verifier = setup
        keys = scheme.generate_user_keys("rotate@x")
        msg = b"before rotation"
        verdicts, _ = verifier.verify_cross_signer(
            [(msg, scheme.sign(msg, keys), keys.identity, keys.public_key)]
        )
        assert verdicts == [True]
        # same identity, different public key: the old signature no longer
        # verifies and the fresh admission path must say so
        other = scheme.generate_user_keys("rotate2@x")
        verdicts, stats = verifier.verify_cross_signer(
            [(msg, scheme.sign(msg, keys), keys.identity, other.public_key)]
        )
        assert verdicts == [False]
        assert stats["admitted_signers"] == 0

    def test_single_corruption_located_by_bisection(self, setup):
        _, _, verifier = setup
        from repro.core.games import run_batch_corruption_game

        outcome = run_batch_corruption_game(
            verifier, signer_count=6, batch_size=24,
            rng=random.Random(0xBEEF),
        )
        assert outcome["correct"]
        assert outcome["located"] and outcome["honest_accepted"]
        assert outcome["bisections"] >= 1
        # bisection narrows to few exact checks, not the whole window
        assert outcome["exact_checks"] < 24

    def test_cancelling_pair_attack_rejected(self, setup):
        _, _, verifier = setup
        from repro.core.games import run_cancelling_pair_game

        outcome = run_cancelling_pair_game(
            verifier, trials=3, rng=random.Random(0xDEAD)
        )
        assert outcome["all_rejected"]
        assert outcome["accepted_forgeries"] == 0


class _PoisonedRng(random.Random):
    """Records every randrange draw so tests can prove a stream was unused."""

    def __init__(self, seed=0):
        super().__init__(seed)
        self.randrange_calls = 0

    def randrange(self, *args, **kwargs):
        self.randrange_calls += 1
        return super().randrange(*args, **kwargs)


class TestBatchRandomnessSource:
    """Fold weights/deltas must never come from the seeded campaign rng.

    An adversary who knows the campaign seed can replay ``ctx.rng`` and
    predict the 80-bit deltas, then craft a cancelling batch that passes
    the small-exponent test.  The default gateway path therefore draws
    batch randomness from the OS CSPRNG; the seeded stream is only used
    under the explicit ``insecure_deterministic_batch`` opt-in.
    """

    def _signed_window(self, ctx):
        scheme = McCLS(ctx, precompute_s=True)
        verifier = McCLSBatchVerifier(scheme)
        signers = [scheme.generate_user_keys(f"rng{i}@x") for i in range(3)]
        same = verifier.sign_batch([b"a", b"b", b"c"], signers[0])
        cross = _cross_items(scheme, signers, 6)
        return scheme, verifier, signers, same, cross

    def test_default_path_never_touches_seeded_stream(self):
        ctx = PairingContext(CURVE, _PoisonedRng(8))
        scheme, verifier, signers, same, cross = self._signed_window(ctx)
        assert not ctx.insecure_deterministic_batch
        ctx.rng.randrange_calls = 0
        assert verifier.verify_same_signer(
            same, signers[0].identity, signers[0].public_key
        )
        verdicts, _ = verifier.verify_cross_signer(cross)
        assert verdicts == [True] * 6
        # steady-state fold again, still without a seeded draw
        verdicts, _ = verifier.verify_cross_signer(cross)
        assert verdicts == [True] * 6
        assert ctx.rng.randrange_calls == 0

    def test_opt_in_restores_deterministic_draws(self):
        ctx = PairingContext(
            CURVE, _PoisonedRng(8), insecure_deterministic_batch=True
        )
        scheme, verifier, signers, same, cross = self._signed_window(ctx)
        ctx.rng.randrange_calls = 0
        assert verifier.verify_same_signer(
            same, signers[0].identity, signers[0].public_key
        )
        assert ctx.rng.randrange_calls == len(same)
        verdicts, _ = verifier.verify_cross_signer(cross)
        assert verdicts == [True] * 6
        assert ctx.rng.randrange_calls == len(same) + len(cross)

    def test_opt_in_draws_are_replayable(self):
        draws = [
            PairingContext(
                CURVE, random.Random(99), insecure_deterministic_batch=True
            ).batch_randrange(1, 1 << 64)
            for _ in range(2)
        ]
        assert draws[0] == draws[1]
        defaults = {
            PairingContext(CURVE, random.Random(99)).batch_randrange(1, 1 << 64)
            for _ in range(8)
        }
        assert len(defaults) > 1  # vanishingly unlikely to collide
