"""Gateway shutdown: graceful drain, fail-fast stop, idempotence.

The drain contract: ``stop(drain=True)`` closes the listener, sheds any
frame that arrives afterwards with ``BUSY server draining``, answers
every request already admitted to the queue, and only then tears the
connections down.  ``stop()`` without drain fails queued work fast with
``ERR server shutting down`` - and in both modes no reply future is ever
left stranded, so the call always returns.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServiceConnectionLost
from repro.pairing.bn import toy_curve
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import Opcode, Status
from repro.service.server import VerificationGateway

CURVE = toy_curve(32)


async def _started_gateway(**kwargs) -> VerificationGateway:
    kwargs.setdefault("curve", CURVE)
    kwargs.setdefault("seed", 5)
    gateway = VerificationGateway(**kwargs)
    await gateway.start()
    return gateway


async def _raw_client(gateway) -> ServiceClient:
    client = ServiceClient(gateway.host, gateway.port)
    await client.connect()
    return client


def _ping_frame() -> bytes:
    return protocol.encode_frame(protocol.encode_request(Opcode.PING))


class TestGracefulDrain:
    def test_drain_answers_every_admitted_request(self):
        async def main():
            gateway = await _started_gateway(queue_size=16)
            client = await _raw_client(gateway)
            try:
                # Pause the consumer so the requests genuinely sit in the
                # queue when stop() begins.
                gateway._consumer.cancel()
                try:
                    await gateway._consumer
                except asyncio.CancelledError:
                    pass
                for _ in range(4):
                    client._writer.write(_ping_frame())
                await client._writer.drain()
                await asyncio.sleep(0.05)  # admitted into the queue
                assert gateway._queue.qsize() == 4

                gateway._consumer = asyncio.create_task(gateway._consume())
                await asyncio.wait_for(gateway.stop(drain=True), 10.0)

                statuses = []
                for _ in range(4):
                    status, _payload = await client._read_reply()
                    statuses.append(status)
                assert statuses == [Status.OK] * 4
                # After the replies the server closed the connection.
                with pytest.raises(ServiceConnectionLost):
                    await client._read_reply()
            finally:
                await client.close()
                await gateway.stop()

        asyncio.run(main())

    def test_frames_during_drain_are_shed_busy(self):
        async def main():
            gateway = await _started_gateway()
            client = await _raw_client(gateway)
            try:
                gateway._draining = True
                client._writer.write(_ping_frame())
                await client._writer.drain()
                status, payload = await client._read_reply()
                assert status == Status.BUSY
                assert payload == b"server draining"
                assert gateway.counters["drain_rejections"] == 1
            finally:
                gateway._draining = False
                await client.close()
                await gateway.stop()

        asyncio.run(main())

    def test_listener_is_closed_before_drain_finishes(self):
        async def main():
            gateway = await _started_gateway()
            host, port = gateway.host, gateway.port
            await asyncio.wait_for(gateway.stop(drain=True), 10.0)
            with pytest.raises(ServiceConnectionLost):
                await ServiceClient(host, port).connect()

        asyncio.run(main())


class TestFastStop:
    def test_queued_work_fails_fast_without_hanging(self):
        async def main():
            gateway = await _started_gateway(queue_size=16)
            client = await _raw_client(gateway)
            try:
                gateway._consumer.cancel()
                try:
                    await gateway._consumer
                except asyncio.CancelledError:
                    pass
                for _ in range(3):
                    client._writer.write(_ping_frame())
                await client._writer.drain()
                await asyncio.sleep(0.05)
                assert gateway._queue.qsize() == 3

                # No drain: stop() must return promptly even though the
                # consumer is gone - the flush answers the queue itself.
                await asyncio.wait_for(gateway.stop(), 5.0)
                assert gateway._queue.qsize() == 0

                statuses = []
                try:
                    for _ in range(3):
                        status, payload = await asyncio.wait_for(
                            client._read_reply(), 2.0
                        )
                        statuses.append((status, payload))
                except ServiceConnectionLost:
                    pass  # teardown may cut the stream after the flush
                for status, payload in statuses:
                    assert status == Status.ERR
                    assert payload == b"server shutting down"
            finally:
                await client.close()

        asyncio.run(main())

    def test_double_stop_is_idempotent(self):
        async def main():
            gateway = await _started_gateway()
            await gateway.stop()
            await asyncio.wait_for(gateway.stop(), 1.0)  # no-op, no hang
            await asyncio.wait_for(gateway.stop(drain=True), 1.0)

        asyncio.run(main())

    def test_stop_with_worker_pool_reaps_workers(self):
        async def main():
            gateway = await _started_gateway(workers=1)
            assert gateway.pool is not None
            processes = [
                h.process for h in gateway.pool.handles()
                if h.process is not None
            ]
            await asyncio.wait_for(gateway.stop(), 15.0)
            assert gateway.pool is None
            for process in processes:
                assert process.exitcode is not None  # reaped, not leaked

        asyncio.run(main())
