"""Discrete-event engine tests."""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, "c")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        log = []
        for label in "abcde":
            sim.schedule(1.0, log.append, label)
        sim.run()
        assert log == list("abcde")

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(7.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0, 7.5]

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "early")
        sim.schedule(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert log == ["early", "late"]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(2.0, outer)
        sim.run()
        assert log == [("outer", 2.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, log.append, "cancelled")
        sim.schedule(2.0, log.append, "kept")
        handle.cancel()
        sim.run()
        assert log == ["kept"]

    def test_pending_events(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events() == 2
        h1.cancel()
        assert sim.pending_events() == 1

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(until=1e9, max_events=1000)

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestRNGStreams:
    def test_streams_are_independent(self):
        sim = Simulator(seed=1)
        a1 = sim.rng("a").random()
        b1 = sim.rng("b").random()
        sim2 = Simulator(seed=1)
        b2 = sim2.rng("b").random()
        a2 = sim2.rng("a").random()
        # Draw order does not matter: streams are seeded by name.
        assert a1 == a2
        assert b1 == b2

    def test_different_seeds_differ(self):
        assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng(
            "x"
        ).random()

    def test_same_stream_object(self):
        sim = Simulator()
        assert sim.rng("s") is sim.rng("s")
