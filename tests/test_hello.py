"""HELLO-based neighbour monitoring tests (RFC 3561 6.9)."""

from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import ALLOWED_HELLO_LOSS, AODVNode
from repro.netsim.routing.secure_aodv import CryptoMaterial, McCLSAODVNode


def build(hello_interval=1.0, n=3, secure=False):
    sim = Simulator(seed=6)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.001)
    nodes = {}
    for i in range(n):
        kwargs = dict(hello_interval=hello_interval)
        if secure:
            nodes[i] = McCLSAODVNode(
                i,
                sim,
                radio,
                StaticPosition((i * 100.0, 0.0)),
                metrics,
                material=CryptoMaterial(226),
                **kwargs,
            )
        else:
            nodes[i] = AODVNode(
                i, sim, radio, StaticPosition((i * 100.0, 0.0)), metrics, **kwargs
            )
    return sim, metrics, radio, nodes


class TestHello:
    def test_neighbors_discovered(self):
        sim, metrics, radio, nodes = build()
        sim.run(until=3.0)
        # Node 1 is in range of both 0 and 2 and should know both.
        assert nodes[1].table.lookup(0, sim.now) is not None
        assert nodes[1].table.lookup(2, sim.now) is not None
        # Nodes 0 and 2 are out of range of each other: no direct route.
        route_02 = nodes[0].table.lookup(2, sim.now)
        assert route_02 is None or route_02.next_hop != 2

    def test_hello_not_forwarded(self):
        sim, metrics, radio, nodes = build()
        sim.run(until=3.0)
        assert metrics.rrep_forwarded == 0

    def test_silent_neighbor_expired(self):
        sim, metrics, radio, nodes = build()
        sim.run(until=3.0)
        assert nodes[0].table.lookup(1, sim.now) is not None
        radio.detach(1)  # node 1 dies
        sim.run(until=3.0 + (ALLOWED_HELLO_LOSS + 2) * 1.0)
        assert 1 not in nodes[0]._last_hello_from

    def test_disabled_by_default(self):
        sim = Simulator(seed=6)
        radio = RadioMedium(sim)
        node = AODVNode(
            0, sim, radio, StaticPosition((0, 0)), MetricsCollector()
        )
        assert node.hello_interval == 0.0
        sim.run(until=5.0)
        assert radio.frames_sent == 0

    def test_hello_keeps_routes_fresh_for_data(self):
        sim, metrics, radio, nodes = build()
        sim.run(until=2.0)
        nodes[0].send_data(DataPacket(0, 0, 0, 1, 64, sim.now))
        sim.run(until=3.0)
        assert metrics.data_received == 1
        # No discovery was needed: the hello already installed the route.
        assert metrics.rreq_initiated == 0

    def test_secure_hellos_authenticated(self):
        sim, metrics, radio, nodes = build(secure=True)
        sim.run(until=3.0)
        assert metrics.auth_rejected == 0
        assert nodes[1].table.lookup(0, sim.now) is not None

    def test_secure_mode_rejects_unsigned_hello(self):
        sim, metrics, radio, nodes = build(secure=True, n=2)
        from repro.netsim.packets import Frame, RouteReply

        naked_hello = RouteReply(
            originator=1,
            destination=1,
            destination_seq=3,
            hop_count=0,
            lifetime=2.0,
            responder=1,
        )
        nodes[0].receive(Frame(sender=1, link_destination=-1, payload=naked_hello))
        sim.run(until=0.5)
        assert metrics.auth_rejected >= 1
