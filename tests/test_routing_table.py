"""AODV routing-table semantics (the freshness rules attacks exploit)."""

from repro.netsim.routing.table import RoutingTable


class TestUpdateRules:
    def test_install_new_route(self):
        table = RoutingTable()
        assert table.update(5, 2, 3, 10, lifetime=3.0, now=0.0)
        entry = table.lookup(5, now=1.0)
        assert entry is not None
        assert entry.next_hop == 2
        assert entry.hop_count == 3

    def test_fresher_sequence_wins(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        assert table.update(5, 9, 7, 11, 3.0, 0.0)  # fresher, even if longer
        assert table.lookup(5, 0.0).next_hop == 9

    def test_stale_sequence_rejected(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        assert not table.update(5, 9, 1, 9, 3.0, 0.0)
        assert table.lookup(5, 0.0).next_hop == 2

    def test_equal_seq_fewer_hops_wins(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        assert table.update(5, 9, 2, 10, 3.0, 0.0)
        assert table.lookup(5, 0.0).next_hop == 9

    def test_equal_seq_more_hops_rejected(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        assert not table.update(5, 9, 4, 10, 3.0, 0.0)

    def test_blackhole_freshness_exploit(self):
        """The attack surface: any higher sequence number displaces a good
        route - this is exactly what the forged RREP does."""
        table = RoutingTable()
        table.update(5, 2, 2, 10, 3.0, 0.0)  # genuine route
        assert table.update(5, 666, 1, 110, 3.0, 0.0)  # fake fresh route
        assert table.lookup(5, 0.0).next_hop == 666

    def test_rejected_update_refreshes_same_next_hop(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        table.update(5, 2, 3, 10, 3.0, 2.0)  # same route seen again
        assert table.lookup(5, 4.5) is not None  # lifetime extended


class TestExpiryAndInvalidation:
    def test_expiry(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, lifetime=3.0, now=0.0)
        assert table.lookup(5, 2.9) is not None
        assert table.lookup(5, 3.1) is None

    def test_refresh(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        table.refresh(5, 3.0, now=2.0)
        assert table.lookup(5, 4.0) is not None

    def test_expired_entry_replaceable_by_stale_seq(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        # after expiry, even an older-seq route is accepted (better than none)
        assert table.update(5, 9, 3, 8, 3.0, now=10.0)

    def test_invalidate(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        entry = table.invalidate(5)
        assert entry is not None
        assert entry.destination_seq == 11  # seq bumped on invalidation
        assert table.lookup(5, 0.0) is None

    def test_invalidate_missing(self):
        assert RoutingTable().invalidate(5) is None

    def test_invalidate_via(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        table.update(6, 2, 1, 4, 3.0, 0.0)
        table.update(7, 9, 1, 4, 3.0, 0.0)
        broken = table.invalidate_via(2)
        assert sorted(e.destination for e in broken) == [5, 6]
        assert table.lookup(7, 0.0) is not None

    def test_precursors(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        table.add_precursor(5, 11)
        table.add_precursor(5, 12)
        assert table.entry(5).precursors == {11, 12}
        # precursors survive route replacement
        table.update(5, 9, 1, 20, 3.0, 0.0)
        assert table.entry(5).precursors == {11, 12}

    def test_len_and_destinations(self):
        table = RoutingTable()
        table.update(5, 2, 3, 10, 3.0, 0.0)
        table.update(6, 2, 3, 10, 3.0, 0.0)
        assert len(table) == 2
        assert sorted(table.destinations()) == [5, 6]
