"""CLI tests (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_scenario_command(self, capsys):
        assert main(["scenario", "--time", "10", "--nodes", "14", "--flows", "3"]) == 0
        out = capsys.readouterr().out
        assert "packet_delivery_ratio" in out

    def test_scenario_with_attack(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--protocol",
                    "mccls",
                    "--attack",
                    "blackhole",
                    "--time",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "attacker nodes" in out
        assert "packet_drop_ratio" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        for scheme in ("ap", "zwxf", "yhg", "mccls"):
            assert scheme in out

    def test_games_command(self, capsys):
        assert main(["games", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        assert "universal" in out
        assert "vs McCLS+" in out

    @pytest.mark.slow
    def test_sweep_command(self, capsys):
        assert main(["sweep", "--time", "10", "--metric", "rreq_ratio"]) == 0
        out = capsys.readouterr().out
        assert "aodv" in out and "mccls" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestObservabilityFlags:
    def test_scenario_json_output(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--protocol",
                    "mccls",
                    "--attack",
                    "blackhole",
                    "--time",
                    "10",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "scenario"
        assert payload["protocol"] == "mccls"
        for metric in (
            "packet_delivery_ratio",
            "rreq_ratio",
            "end_to_end_delay",
            "packet_drop_ratio",
        ):
            assert metric in payload["metrics"]
        assert payload["ops"]["modelled_pairings"] > 0
        assert payload["ops"]["modelled_scalar_mults"] > 0
        assert len(payload["attacker_ids"]) == 2

    def test_scenario_trace_out_writes_jsonl(self, capsys, tmp_path):
        trace_path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "scenario",
                    "--protocol",
                    "mccls",
                    "--time",
                    "10",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        lines = trace_path.read_text().strip().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        kinds = {event["event"] for event in events}
        assert "radio.tx" in kinds
        assert "sim.sample" in kinds

    def test_scenario_text_mode_prints_ops(self, capsys):
        assert main(["scenario", "--protocol", "mccls", "--time", "10"]) == 0
        out = capsys.readouterr().out
        assert "ops:" in out
        assert "modelled_pairings" in out

    def test_table1_json_output(self, capsys):
        assert main(["table1", "--bits", "32", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "table1"
        rows = {row["scheme"]: row for row in payload["rows"]}
        assert rows["mccls"]["sign"]["pairings"] == 0
        assert rows["mccls"]["verify_warm"]["pairings"] == 1
        assert rows["mccls"]["executed_pairings"]["sign"] == 0
        assert rows["mccls"]["executed_pairings"]["verify"] >= 1

    def test_sweep_accepts_cryptanalyst_attack(self):
        args = build_parser().parse_args(
            ["sweep", "--attack", "blackhole-cryptanalyst"]
        )
        assert args.attack == "blackhole-cryptanalyst"
        assert args.func.__name__ == "cmd_sweep"

FAULT_SPEC = (
    '{"crashes": [{"at": 3, "count": 2, "recover_at": 8}],'
    ' "corruption": [{"start": 2, "stop": 9, "probability": 0.3}]}'
)


class TestFaultFlags:
    def test_scenario_faults_text_summary(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--protocol",
                    "mccls",
                    "--time",
                    "10",
                    "--faults",
                    FAULT_SPEC,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "faults injected:" in out
        assert "fault.node_crash=2" in out

    def test_scenario_faults_json_field(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--protocol",
                    "mccls",
                    "--time",
                    "10",
                    "--faults",
                    FAULT_SPEC,
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"]["fault.node_crash"] == 2
        assert payload["faults"]["fault.frame_corrupt"] > 0

    def test_scenario_faults_from_file(self, capsys, tmp_path):
        spec_path = tmp_path / "plan.json"
        spec_path.write_text(FAULT_SPEC)
        assert (
            main(
                ["scenario", "--time", "10", "--faults", str(spec_path), "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults"]["fault.node_crash"] == 2

    def test_scenario_fault_events_traced(self, capsys, tmp_path):
        trace_path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "scenario",
                    "--time",
                    "10",
                    "--faults",
                    FAULT_SPEC,
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        events = [
            json.loads(line)
            for line in trace_path.read_text().strip().splitlines()
        ]
        kinds = {event["event"] for event in events}
        assert "fault.node_crash" in kinds
        assert "fault.frame_corrupt" in kinds

    def test_bad_fault_spec_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            main(["scenario", "--time", "10", "--faults", '{"crashs": []}'])
        with pytest.raises(SimulationError):
            main(["scenario", "--time", "10", "--faults", "not json {"])
        with pytest.raises(SimulationError):
            main(["scenario", "--time", "10", "--faults", "/no/such/file.json"])


class TestCampaignCommand:
    def test_campaign_text_summary(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--time",
                    "10",
                    "--nodes",
                    "14",
                    "--flows",
                    "3",
                    "--seeds",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "packet_delivery_ratio" in out
        assert "campaign: 2/2 runs ok" in out

    def test_campaign_json_output(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--time",
                    "10",
                    "--nodes",
                    "14",
                    "--flows",
                    "3",
                    "--seeds",
                    "2",
                    "--faults",
                    FAULT_SPEC,
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "campaign"
        assert payload["completed_seeds"] == payload["seeds"]
        assert payload["failures"] == []
        assert payload["faults"]["fault.node_crash"] == 4  # 2 per seed
        pdr = payload["metrics"]["packet_delivery_ratio"]
        assert len(pdr["samples"]) == 2
        assert 0.0 <= pdr["mean"] <= 1.0


class TestSweepFaults:
    @pytest.mark.slow
    def test_sweep_faults_aggregated(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--time",
                    "10",
                    "--faults",
                    FAULT_SPEC,
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        # 5 speeds x 2 protocols x 2 crashes per run
        assert payload["faults"]["fault.node_crash"] == 20

    @pytest.mark.slow
    def test_sweep_json_output(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--time",
                    "10",
                    "--metric",
                    "packet_delivery_ratio",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "sweep"
        assert len(payload["rows"]) == 5
        assert all(
            set(row) == {"speed", "aodv", "mccls"} for row in payload["rows"]
        )
