"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_scenario_command(self, capsys):
        assert main(["scenario", "--time", "10", "--nodes", "14", "--flows", "3"]) == 0
        out = capsys.readouterr().out
        assert "packet_delivery_ratio" in out

    def test_scenario_with_attack(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--protocol",
                    "mccls",
                    "--attack",
                    "blackhole",
                    "--time",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "attacker nodes" in out
        assert "packet_drop_ratio" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        for scheme in ("ap", "zwxf", "yhg", "mccls"):
            assert scheme in out

    def test_games_command(self, capsys):
        assert main(["games", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        assert "universal" in out
        assert "vs McCLS+" in out

    @pytest.mark.slow
    def test_sweep_command(self, capsys):
        assert main(["sweep", "--time", "10", "--metric", "rreq_ratio"]) == 0
        out = capsys.readouterr().out
        assert "aodv" in out and "mccls" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
