"""GLV/GLS endomorphism scalar-multiplication tests.

Covers the lattice data itself (eigenvalue identities, decomposition
bounds and recombination), value-identity of every accelerated path
against the generic ladder (including negatives, zeros and infinity),
the context routing guards (unreduced scalars and untrusted G2 points
must stay on the generic path), and comb-table pinning.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.obs.registry import get_registry
from repro.pairing import backends, glv
from repro.pairing.bn import bn254, toy_curve
from repro.pairing.curve import point_key
from repro.pairing.groups import PairingContext
from repro.pairing.pairing import twist_frobenius

CURVE = toy_curve(32)
PARAMS = glv.glv_params(CURVE)


def _native_params():
    ok, reason = backends.get_backend("native").availability()
    marks = [] if ok else [pytest.mark.skip(reason=f"native: {reason}")]
    return [pytest.param("native", marks=marks)]


class TestParams:
    def test_params_exist_for_all_bn_curves(self):
        for curve in (toy_curve(32), toy_curve(48), toy_curve(64), bn254()):
            params = glv.glv_params(curve)
            assert params is not None
            assert params.mu is not None  # BN twists always carry psi

    def test_lambda_is_cube_root_of_unity_mod_n(self):
        lam, n = PARAMS.lam, CURVE.n
        assert lam not in (0, 1)
        assert pow(lam, 3, n) == 1
        assert (lam * lam + lam + 1) % n == 0

    def test_beta_is_cube_root_of_unity_mod_p(self):
        beta, p = PARAMS.beta, CURVE.p
        assert beta not in (0, 1)
        assert pow(beta, 3, p) == 1

    def test_phi_acts_as_lambda_on_g1(self):
        g1 = CURVE.g1
        phi = CURVE.g1_curve.unsafe_point(
            CURVE.spec.fp((int(g1.x.value) * PARAMS.beta) % CURVE.p), g1.y
        )
        assert g1 * PARAMS.lam == phi

    def test_psi_acts_as_mu_on_g2(self):
        assert twist_frobenius(CURVE, CURVE.g2) == CURVE.g2 * PARAMS.mu

    def test_mu_satisfies_cyclotomic_relation(self):
        mu, n = PARAMS.mu, CURVE.n
        assert (pow(mu, 4, n) - pow(mu, 2, n) + 1) % n == 0

    def test_basis_vectors_lie_in_the_lattice(self):
        lam, n = PARAMS.lam, CURVE.n
        for a, b in (PARAMS.v1, PARAMS.v2):
            assert (a + b * lam) % n == 0

    def test_params_cache_is_per_curve(self):
        assert glv.glv_params(toy_curve(32)) is PARAMS
        assert glv.glv_params(toy_curve(48)) is not PARAMS


class TestDecompose:
    def test_recombination_and_bounds_2way(self):
        n = CURVE.n
        bound = 1 << (n.bit_length() // 2 + 3)
        rng = random.Random(0x61F1)
        for _ in range(40):
            k = rng.randrange(1, n)
            k1, k2 = glv.decompose2(PARAMS, k)
            assert (k1 + k2 * PARAMS.lam) % n == k % n
            assert abs(k1) < bound and abs(k2) < bound

    def test_recombination_2way_g2(self):
        n = CURVE.n
        rng = random.Random(0x61F2)
        for _ in range(20):
            k = rng.randrange(1, n)
            k1, k2 = glv.decompose2_g2(PARAMS, k)
            assert (k1 + k2 * PARAMS.mu) % n == k % n

    def test_recombination_and_bounds_4way(self):
        params = glv.glv_params(bn254())
        if params.basis4 is None:
            pytest.skip("4-way basis rejected for this curve")
        n, mu = params.n, params.mu
        bound = 1 << ((n.bit_length() + 3) // 4 + 9)
        rng = random.Random(0x61F4)
        for _ in range(20):
            k = rng.randrange(1, n)
            split = glv.decompose4(params, k)
            assert split is not None
            acc, power = 0, 1
            for ki in split:
                assert abs(ki) < bound
                acc = (acc + ki * power) % n
                power = (power * mu) % n
            assert acc == k % n

    def test_edge_scalars(self):
        for k in (1, 2, CURVE.n - 1, CURVE.n // 2):
            k1, k2 = glv.decompose2(PARAMS, k)
            assert (k1 + k2 * PARAMS.lam) % CURVE.n == k % CURVE.n


class TestValueIdentity:
    def test_glv_mul_matches_ladder(self):
        rng = random.Random(0x91E1)
        point = CURVE.g1 * 7
        for _ in range(25):
            k = rng.randrange(1, CURVE.n)
            assert glv.glv_mul(CURVE, point, k) == point * k

    def test_glv_mul_reduces_mod_n(self):
        point = CURVE.g1 * 5
        k = CURVE.n + 12345
        assert glv.glv_mul(CURVE, point, k) == point * (k % CURVE.n)

    def test_glv_mul_zero_and_infinity(self):
        point = CURVE.g1 * 3
        assert glv.glv_mul(CURVE, point, 0).is_infinity()
        inf = CURVE.g1_curve.infinity()
        assert glv.glv_mul(CURVE, inf, 17).is_infinity()

    def test_glv_mul_g2_matches_ladder(self):
        rng = random.Random(0x91E2)
        point = CURVE.g2 * 11  # generator multiple: in the order-n subgroup
        for _ in range(15):
            k = rng.randrange(1, CURVE.n)
            assert glv.glv_mul_g2(CURVE, point, k) == point * k

    def test_msm_matches_folded_sums(self):
        rng = random.Random(0x91E3)
        points = [CURVE.g1 * rng.randrange(1, CURVE.n) for _ in range(5)]
        scalars = [rng.randrange(-CURVE.n, CURVE.n) for _ in range(5)]
        scalars[2] = 0
        points[3] = CURVE.g1_curve.infinity()
        expected = CURVE.g1_curve.infinity()
        for pt, k in zip(points, scalars):
            expected = expected + pt * (k % CURVE.n)
        got = glv.msm(CURVE, CURVE.g1_curve, list(zip(points, scalars)))
        assert got == expected

    def test_msm_empty_and_all_zero(self):
        assert glv.msm(CURVE, CURVE.g1_curve, []).is_infinity()
        assert glv.msm(
            CURVE, CURVE.g1_curve, [(CURVE.g1, 0)]
        ).is_infinity()

    def test_msm_rejects_non_int_scalars(self):
        with pytest.raises(TypeError):
            glv.msm(CURVE, CURVE.g1_curve, [(CURVE.g1, 1.5)])


class TestRoutingGuards:
    def test_try_mul_declines_short_and_out_of_range_scalars(self):
        point = CURVE.g1 * 9
        assert glv.try_mul(CURVE, point, 3) is None  # below GLV_MIN_BITS
        assert glv.try_mul(CURVE, point, 0) is None
        assert glv.try_mul(CURVE, point, -5) is None
        assert glv.try_mul(CURVE, point, CURVE.n) is None  # unreduced
        assert glv.try_mul(CURVE, point, "7") is None

    def test_try_mul_declines_infinity_and_wrong_field(self):
        assert glv.try_mul(CURVE, CURVE.g1_curve.infinity(), 1 << 40) is None
        # a G2 point through the G1 path (and vice versa) must decline
        assert glv.try_mul(CURVE, CURVE.g2, 1 << 40) is None
        assert glv.try_mul(CURVE, CURVE.g1, 1 << 40, g2=True) is None

    def test_try_mul_counts_fast_mults(self):
        curve = toy_curve(64)  # toy32 scalars are too short for GLV routing
        with obs.collecting() as registry:
            out = glv.try_mul(curve, curve.g1 * 3, (1 << 40) + 7)
        assert out is not None
        assert registry.counter("glv.fast_mults").value >= 1

    def test_context_g2_requires_subgroup_opt_in(self):
        """Untrusted G2 points keep generic semantics: no GLV routing."""
        curve = toy_curve(64)
        ctx = PairingContext(curve, random.Random(1))
        point = curve.g2 * 9  # NOT the pinned generator: no comb shortcut
        k = (1 << 40) + 9
        with obs.collecting() as registry:
            ctx.g2_mul(point, k)
            off_path = registry.counter("glv.fast_mults").value
            ctx.g2_mul(point, k, in_subgroup=True)
            on_path = registry.counter("glv.fast_mults").value
        assert off_path == 0
        assert on_path == 1

    def test_membership_checks_unaffected(self):
        """order-n multiplication of a subgroup point is still infinity via
        the generic path (scalar == n is out of GLV range by design)."""
        assert (CURVE.g1 * CURVE.n).is_infinity()
        assert glv.try_mul(CURVE, CURVE.g1, CURVE.n) is None


@pytest.mark.parametrize("backend_name", _native_params())
class TestKernelIdentity:
    def test_kernel_msm_bit_identical_and_count_identical(self, backend_name):
        rng = random.Random(0xC0DE)
        ref = toy_curve(48)
        nat = toy_curve(48, backend=backend_name)
        assert nat.spec.backend.point_kernel(nat) is not None
        k = rng.randrange(1 << 40, ref.n)
        for ref_pt, nat_pt, fn in (
            (ref.g1 * 7, nat.g1 * 7, glv.glv_mul),
            (ref.g2 * 7, nat.g2 * 7, glv.glv_mul_g2),
        ):
            with obs.collecting() as reg_ref:
                expected = fn(ref, ref_pt, k)
            with obs.collecting() as reg_nat:
                got = fn(nat, nat_pt, k)
            assert point_key(got) == point_key(expected)
            assert reg_ref.field_ops.fp_mul == reg_nat.field_ops.fp_mul

    def test_kernel_msm_negative_scalars(self, backend_name):
        nat = toy_curve(48, backend=backend_name)
        rng = random.Random(0xC0DF)
        pts = [nat.g1 * rng.randrange(1, nat.n) for _ in range(4)]
        ks = [rng.randrange(1, nat.n) * s for s in (1, -1, 1, -1)]
        expected = nat.g1_curve.infinity()
        for pt, k in zip(pts, ks):
            expected = expected + pt * (k % nat.n)
        assert glv.msm(nat, nat.g1_curve, list(zip(pts, ks))) == expected


class TestPinning:
    def test_generator_and_p_pub_tables_are_pinned(self):
        from repro.core.mccls import McCLS

        scheme = McCLS(PairingContext(CURVE, random.Random(4)))
        ctx = scheme.ctx
        for base in (ctx.g1, ctx.g2, scheme.p_pub_g1, scheme.p_pub_g2):
            assert point_key(base) in ctx._pinned_bases

    def test_cache_stats_reports_pinned_and_evictable(self):
        from repro.core.mccls import McCLS

        scheme = McCLS(PairingContext(CURVE, random.Random(4)))
        stats = scheme.ctx.cache_stats()["fixed_bases"]
        assert stats["pinned"] >= 4
        assert stats["evictable"] == stats["size"]

    def test_pinned_tables_survive_identity_churn(self):
        from repro.core.mccls import McCLS

        scheme = McCLS(PairingContext(CURVE, random.Random(4)))
        ctx = scheme.ctx
        maxsize = ctx._fixed_bases.stats()["maxsize"]
        for i in range(maxsize + 8):
            keys = scheme.generate_user_keys(f"churn-{i}@test")
            scheme.verify(b"m", scheme.sign(b"m", keys), keys.identity,
                          keys.public_key)
        assert point_key(scheme.p_pub_g1) in ctx._pinned_bases
        assert point_key(ctx.g1) in ctx._pinned_bases

    def test_drop_fixed_base_unpins(self):
        ctx = PairingContext(CURVE, random.Random(4))
        point = CURVE.g1 * 123
        ctx.fixed_base(point, pin=True)
        assert point_key(point) in ctx._pinned_bases
        ctx.drop_fixed_base(point)
        assert point_key(point) not in ctx._pinned_bases
