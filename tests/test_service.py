"""Verification gateway: protocol, batching, backpressure, rekey.

Driven through ``asyncio.run`` from synchronous tests: each test builds
an in-process gateway on a loopback port, runs one scripted exchange and
tears everything down - no shared server state between tests.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import (
    SerializationError,
    ServiceConnectionLost,
    ServiceError,
    ServiceTimeout,
)
from repro.pairing.bn import toy_curve
from repro.service import protocol
from repro.service.client import CircuitBreaker, RetryPolicy, ServiceClient
from repro.service.protocol import Opcode, Status
from repro.service.server import VerificationGateway

CURVE = toy_curve(32)
MSG = b"route request 7"


def gateway_test(coro_factory, **gateway_kwargs):
    """Run one async test body against a fresh started gateway."""

    async def main():
        gateway_kwargs.setdefault("curve", CURVE)
        gateway_kwargs.setdefault("seed", 5)
        gateway = VerificationGateway(**gateway_kwargs)
        await gateway.start()
        try:
            return await coro_factory(gateway)
        finally:
            await gateway.stop()

    return asyncio.run(main())


async def connected_client(gateway) -> ServiceClient:
    client = ServiceClient(gateway.host, gateway.port)
    await client.connect()
    return client


class TestProtocolCodec:
    def test_frame_round_trip(self):
        frame = protocol.encode_frame(b"hello")
        assert protocol.frame_length(frame[:4]) == 5
        assert frame[4:] == b"hello"

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(SerializationError):
            protocol.encode_frame(b"x" * (protocol.MAX_FRAME + 1))

    def test_oversized_declaration_rejected(self):
        import struct

        header = struct.pack("!I", protocol.MAX_FRAME + 1)
        with pytest.raises(SerializationError):
            protocol.frame_length(header)

    def test_request_reply_envelopes(self):
        opcode, payload, trace_id, deadline_ms = protocol.decode_request(
            protocol.encode_request(Opcode.PING, b"abc")
        )
        assert (opcode, payload, trace_id, deadline_ms) == (
            Opcode.PING, b"abc", None, None,
        )
        status, payload = protocol.decode_reply(
            protocol.encode_reply(Status.BUSY, b"full")
        )
        assert (status, payload) == (Status.BUSY, b"full")

    def test_traced_request_round_trip(self):
        body = protocol.encode_request(Opcode.VERIFY, b"abc", trace_id=77)
        assert body[0] == Opcode.VERIFY | protocol.TRACE_FLAG
        opcode, payload, trace_id, deadline_ms = protocol.decode_request(body)
        assert (opcode, payload, trace_id, deadline_ms) == (
            Opcode.VERIFY, b"abc", 77, None,
        )

    def test_deadline_request_round_trip(self):
        body = protocol.encode_request(Opcode.VERIFY, b"abc", deadline_ms=250)
        assert body[0] == Opcode.VERIFY | protocol.DEADLINE_FLAG
        opcode, payload, trace_id, deadline_ms = protocol.decode_request(body)
        assert (opcode, payload, trace_id, deadline_ms) == (
            Opcode.VERIFY, b"abc", None, 250,
        )

    def test_traced_and_deadlined_request_round_trip(self):
        body = protocol.encode_request(
            Opcode.VERIFY, b"xyz", trace_id=9, deadline_ms=1000
        )
        assert body[0] == (
            Opcode.VERIFY | protocol.TRACE_FLAG | protocol.DEADLINE_FLAG
        )
        opcode, payload, trace_id, deadline_ms = protocol.decode_request(body)
        assert (opcode, payload, trace_id, deadline_ms) == (
            Opcode.VERIFY, b"xyz", 9, 1000,
        )

    def test_deadline_header_malformations_rejected(self):
        # truncated 4-byte deadline header
        with pytest.raises(SerializationError):
            protocol.decode_request(
                bytes([Opcode.PING | protocol.DEADLINE_FLAG]) + b"\x00" * 2
            )
        # deadline 0 is reserved
        with pytest.raises(SerializationError):
            protocol.decode_request(
                bytes([Opcode.PING | protocol.DEADLINE_FLAG]) + b"\x00" * 4
            )
        # out-of-range budgets rejected at encode time
        for bad in (0, -1, protocol.MAX_DEADLINE_MS + 1):
            with pytest.raises(SerializationError):
                protocol.encode_request(Opcode.PING, b"", deadline_ms=bad)

    def test_split_verify_payload_matches_full_decode(self):
        from repro.core.mccls import McCLS
        from repro.core.serialization import encode_g1
        from repro.pairing.groups import PairingContext
        import random

        scheme = McCLS(PairingContext(CURVE, random.Random(1)))
        keys = scheme.generate_user_keys("split")
        payload = protocol.encode_verify_payload(
            CURVE, "split", keys.public_key, MSG, scheme.sign(MSG, keys)
        )
        identity, pk_blob = protocol.split_verify_payload(CURVE, payload)
        assert identity == "split"
        assert pk_blob == encode_g1(CURVE, keys.public_key)
        with pytest.raises(SerializationError):
            protocol.split_verify_payload(CURVE, payload[:4])

    def test_trace_header_malformations_rejected(self):
        # truncated 8-byte trace header
        with pytest.raises(SerializationError):
            protocol.decode_request(
                bytes([Opcode.PING | protocol.TRACE_FLAG]) + b"\x00" * 4
            )
        # trace id 0 is reserved
        with pytest.raises(SerializationError):
            protocol.decode_request(
                bytes([Opcode.PING | protocol.TRACE_FLAG]) + b"\x00" * 8
            )
        # out-of-range ids rejected at encode time
        for bad in (0, -1, 1 << 64):
            with pytest.raises(SerializationError):
                protocol.encode_request(Opcode.PING, b"", trace_id=bad)

    def test_unknown_opcode_and_status_rejected(self):
        with pytest.raises(SerializationError):
            protocol.decode_request(bytes([250]) + b"x")
        with pytest.raises(SerializationError):
            protocol.decode_reply(bytes([250]))
        with pytest.raises(SerializationError):
            protocol.decode_request(b"")
        with pytest.raises(SerializationError):
            protocol.decode_reply(b"")

    def test_verify_payload_round_trip(self):
        from repro.core.mccls import McCLS
        from repro.pairing.groups import PairingContext
        import random

        scheme = McCLS(PairingContext(CURVE, random.Random(1)))
        keys = scheme.generate_user_keys("codec")
        signature = scheme.sign(MSG, keys)
        payload = protocol.encode_verify_payload(
            CURVE, "codec", keys.public_key, MSG, signature
        )
        request = protocol.decode_verify_payload(CURVE, payload)
        assert request.identity == "codec"
        assert request.public_key == keys.public_key
        assert request.message == MSG
        assert request.signature == signature


class TestGatewayBasics:
    def test_ping_params_enroll_verify(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                assert await client.ping()
                params = await client.params()
                assert params["scheme"] == "mccls"
                assert client.curve.name == CURVE.name

                keys = await client.enroll("node-1")
                signature = client.sign(MSG, keys)
                assert await client.verify(
                    "node-1", keys.public_key, MSG, signature
                )
                # Tampered message -> clean False, not an error.
                assert not await client.verify(
                    "node-1", keys.public_key, b"other", signature
                )
            finally:
                await client.close()

        gateway_test(body)

    def test_enrolled_keys_verify_locally_too(self):
        """The wire round trip preserves key material exactly: a local
        verifier-view check agrees with the gateway."""

        async def body(gateway):
            client = await connected_client(gateway)
            try:
                keys = await client.enroll("node-2")
                signature = client.sign(MSG, keys)
                view = client.scheme_view()
                assert view.verify(MSG, signature, "node-2", keys.public_key)
            finally:
                await client.close()

        gateway_test(body)

    def test_stats_shape(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                stats = await client.stats()
                assert stats["counters"]["requests"] >= 1
                assert set(stats["cache"]) == {
                    "pairing",
                    "miller",
                    "fixed_bases",
                    "hash_g2",
                }
                assert stats["queue_size"] == gateway.queue_size
            finally:
                await client.close()

        gateway_test(body)

    def test_two_connections_are_independent(self):
        async def body(gateway):
            a = await connected_client(gateway)
            b = await connected_client(gateway)
            try:
                keys = await a.enroll("shared")
                signature = a.sign(MSG, keys)
                # The other connection verifies what the first enrolled.
                assert await b.verify("shared", keys.public_key, MSG, signature)
            finally:
                await a.close()
                await b.close()

        gateway_test(body)


class TestMicroBatching:
    def test_same_signer_burst_is_batched(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                keys = await client.enroll("burst")
                items = []
                for i in range(12):
                    message = b"msg-%d" % i
                    items.append(
                        (
                            "burst",
                            keys.public_key,
                            message,
                            client.sign(message, keys),
                        )
                    )
                outcomes = await client.verify_many(items)
                assert all(o.ok and o.valid for o in outcomes)
                assert gateway.counters["batches"] >= 1
                assert gateway.counters["batched_requests"] >= 2
                # A clean batch settles without the per-item fallback.
                assert gateway.counters["batch_fallbacks"] == 0
            finally:
                await client.close()

        gateway_test(body)

    def test_bad_item_in_batch_gets_exact_verdict(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                keys = await client.enroll("mixed")
                items = []
                for i in range(8):
                    message = b"msg-%d" % i
                    items.append(
                        (
                            "mixed",
                            keys.public_key,
                            message,
                            client.sign(message, keys),
                        )
                    )
                # Tamper one message after signing: its verdict must be
                # False while every other member stays True.
                identity, pk, _msg, sig = items[3]
                items[3] = (identity, pk, b"tampered", sig)
                outcomes = await client.verify_many(items)
                verdicts = [o.valid for o in outcomes]
                assert verdicts == [
                    True, True, True, False, True, True, True, True,
                ]
                assert gateway.counters["batch_fallbacks"] >= 1
            finally:
                await client.close()

        gateway_test(body)

    def test_replies_arrive_in_request_order(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                alice = await client.enroll("alice")
                bob = await client.enroll("bob")
                items = []
                expected = []
                for i in range(10):
                    who = alice if i % 2 == 0 else bob
                    message = b"m%d" % i
                    good = i % 3 != 0
                    signature = client.sign(
                        message if good else b"forged", who
                    )
                    items.append(
                        (who.identity, who.public_key, message, signature)
                    )
                    expected.append(good)
                outcomes = await client.verify_many(items)
                assert [o.valid for o in outcomes] == expected
            finally:
                await client.close()

        gateway_test(body)


class TestBackpressure:
    def test_overflow_is_answered_busy(self):
        """With the consumer paused, requests beyond the bounded queue get
        an immediate BUSY verdict; queued ones complete after resume."""

        async def body(gateway):
            # Pause the batch consumer so the queue genuinely fills.
            gateway._consumer.cancel()
            try:
                await gateway._consumer
            except asyncio.CancelledError:
                pass

            client = await connected_client(gateway)
            try:
                keys_payload = protocol.encode_enroll_payload("x")
                total = gateway.queue_size + 3
                for _ in range(total):
                    client._writer.write(
                        protocol.encode_frame(
                            protocol.encode_request(
                                Opcode.ENROLL, keys_payload
                            )
                        )
                    )
                await client._writer.drain()
                await asyncio.sleep(0.05)  # let the reader ingest frames
                assert gateway.counters["busy_rejections"] == 3

                # Resume the consumer; every admitted request completes
                # and the shed ones surface as BUSY, all in order.
                gateway._consumer = asyncio.create_task(gateway._consume())
                statuses = []
                for _ in range(total):
                    status, _payload = await client._read_reply()
                    statuses.append(status)
                assert statuses.count(Status.BUSY) == 3
                assert statuses.count(Status.OK) == gateway.queue_size
                # FIFO: the shed requests were the LAST admitted.
                assert statuses[-3:] == [Status.BUSY] * 3
            finally:
                await client.close()

        gateway_test(body, queue_size=8)


class TestRekeyOverTheWire:
    def test_rekey_invalidates_and_reissues(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                old_params = await client.params()
                keys = await client.enroll("node-r")
                signature = client.sign(MSG, keys)
                assert await client.verify(
                    "node-r", keys.public_key, MSG, signature
                )

                new_params = await client.rekey()
                assert new_params["p_pub_g1"] != old_params["p_pub_g1"]
                # Old material is dead under the new master secret.
                assert not await client.verify(
                    "node-r", keys.public_key, MSG, signature
                )
                # The KGC re-issued the enrolled identity server-side.
                fresh = gateway.kgc.keys_for("node-r")
                fresh_sig = client.sign(MSG, fresh)
                assert await client.verify(
                    "node-r", fresh.public_key, MSG, fresh_sig
                )
            finally:
                await client.close()

        gateway_test(body)

    def test_post_rekey_verify_misses_cache_once(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                await client.rekey()
                keys = await client.enroll("probe")
                signature = client.sign(MSG, keys)

                def cache_totals(doc):
                    miller = doc["cache"]["miller"]
                    return miller["misses"], miller["hits"]

                before = cache_totals(await client.stats())
                assert await client.verify(
                    "probe", keys.public_key, MSG, signature
                )
                after_first = cache_totals(await client.stats())
                assert await client.verify(
                    "probe", keys.public_key, MSG, signature
                )
                after_second = cache_totals(await client.stats())

                # Exactly one cold miss, then a warm hit.
                assert after_first[0] - before[0] == 1
                assert after_first[1] - before[1] == 0
                assert after_second[0] - after_first[0] == 0
                assert after_second[1] - after_first[1] == 1
            finally:
                await client.close()

        gateway_test(body)


class TestClientErrors:
    def test_err_reply_raises_service_error(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                with pytest.raises(ServiceError):
                    await client._call(Opcode.ENROLL, b"\xff")  # bad payload
                # The connection survives the error reply.
                assert await client.ping()
            finally:
                await client.close()

        gateway_test(body)

    def test_sign_before_params_rejected(self):
        client = ServiceClient()
        with pytest.raises(ServiceError):
            client.sign(MSG, None)


class TestDeadlines:
    def test_generous_deadline_still_verifies(self):
        async def body(gateway):
            client = await connected_client(gateway)
            try:
                keys = await client.enroll("slack")
                signature = client.sign(MSG, keys)
                assert await client.verify(
                    "slack", keys.public_key, MSG, signature,
                    deadline_ms=60_000,
                )
                assert gateway.counters["deadline_requests"] == 1
                assert gateway.counters["deadline_expirations"] == 0
            finally:
                await client.close()

        gateway_test(body)

    def test_expired_in_queue_is_err_not_verdict(self):
        """A request whose budget elapses while queued is shed with an
        ERR deadline reply instead of being verified late."""

        async def body(gateway):
            client = await connected_client(gateway)
            try:
                keys = await client.enroll("late")
                signature = client.sign(MSG, keys)
                payload = protocol.encode_verify_payload(
                    CURVE, "late", keys.public_key, MSG, signature
                )
                # Pause the consumer so the request ages in the queue.
                gateway._consumer.cancel()
                try:
                    await gateway._consumer
                except asyncio.CancelledError:
                    pass
                client._writer.write(
                    protocol.encode_frame(
                        protocol.encode_request(
                            Opcode.VERIFY, payload, deadline_ms=10
                        )
                    )
                )
                await client._writer.drain()
                await asyncio.sleep(0.08)
                gateway._consumer = asyncio.create_task(gateway._consume())
                status, body_bytes = await client._read_reply()
                assert status == Status.ERR
                assert body_bytes.startswith(b"deadline exceeded")
                assert gateway.counters["deadline_expirations"] == 1
                # The connection survives a shed request.
                assert await client.ping()
            finally:
                await client.close()

        gateway_test(body)


def _scripted_port(handler):
    """Start a throwaway asyncio server; returns (server, port)."""

    async def boot():
        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        return server, server.sockets[0].getsockname()[1]

    return boot()


class TestClientResilience:
    def test_retry_policy_delay_schedule(self):
        import random as _random

        policy = RetryPolicy(
            attempts=5, base_delay_s=0.1, max_delay_s=0.5,
            multiplier=2.0, jitter=0.0,
        )
        rng = _random.Random(0)
        delays = [policy.delay_s(k, rng) for k in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]
        jittered = RetryPolicy(
            attempts=2, base_delay_s=0.1, jitter=0.5
        ).delay_s(1, _random.Random(7))
        assert 0.05 <= jittered <= 0.15

    def test_circuit_breaker_transitions(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            threshold=2, cooldown_s=5.0, clock=lambda: clock["now"]
        )
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # still cooling down
        clock["now"] = 5.1
        assert breaker.allow()  # half-open probe
        assert breaker.state == "half-open"
        breaker.record_failure()  # probe failed -> re-open
        assert breaker.state == "open" and breaker.opens == 2
        clock["now"] = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_stalled_server_surfaces_service_timeout(self):
        """A server that accepts but never replies trips the per-call
        timeout as ServiceTimeout (and the connection is dropped)."""

        async def stall(reader, writer):
            try:
                await reader.read(1 << 16)
                await asyncio.sleep(30)
            except (asyncio.CancelledError, ConnectionError):
                pass
            finally:
                writer.close()

        async def main():
            server, port = await _scripted_port(stall)
            client = ServiceClient("127.0.0.1", port, timeout_s=0.1)
            await client.connect()
            try:
                with pytest.raises(ServiceTimeout):
                    await client._call(Opcode.PING)
                assert client.counters["timeouts"] == 1
                assert client._writer is None  # dropped, not half-read
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(main())

    def test_immediate_close_is_connection_lost_not_timeout(self):
        async def slam(reader, writer):
            writer.close()

        async def main():
            server, port = await _scripted_port(slam)
            client = ServiceClient("127.0.0.1", port, timeout_s=5.0)
            await client.connect()
            try:
                with pytest.raises(ServiceConnectionLost):
                    await client._call(Opcode.PING)
                assert client.counters["timeouts"] == 0
                assert client.counters["connection_losses"] >= 1
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(main())

    def test_busy_replies_are_retried_with_backoff(self):
        """Two BUSY sheds then OK: the retrying client succeeds and the
        counters record both backoffs."""
        script = [Status.BUSY, Status.BUSY, Status.OK]

        async def shedding(reader, writer):
            try:
                while script:
                    header = await reader.readexactly(4)
                    await reader.readexactly(protocol.frame_length(header))
                    writer.write(
                        protocol.encode_frame(
                            protocol.encode_reply(script.pop(0), b"")
                        )
                    )
                    await writer.drain()
            except (asyncio.IncompleteReadError, ConnectionError):
                pass
            finally:
                writer.close()

        async def main():
            server, port = await _scripted_port(shedding)
            client = ServiceClient(
                "127.0.0.1",
                port,
                retry=RetryPolicy(attempts=4, base_delay_s=0.001),
            )
            await client.connect()
            try:
                assert await client.ping()
                assert client.counters["busy_replies"] == 2
                assert client.counters["retries"] == 2
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(main())

    def test_non_idempotent_request_is_never_replayed(self):
        """A dropped connection mid-ENROLL must raise, not silently
        re-apply a request the server may already have mutated on."""
        accepted = {"count": 0}

        async def drop_after_read(reader, writer):
            accepted["count"] += 1
            try:
                await reader.readexactly(4)
            except asyncio.IncompleteReadError:
                pass
            writer.close()

        async def main():
            server, port = await _scripted_port(drop_after_read)
            client = ServiceClient(
                "127.0.0.1",
                port,
                retry=RetryPolicy(attempts=4, base_delay_s=0.001),
            )
            await client.connect()
            try:
                with pytest.raises(ServiceConnectionLost):
                    await client._call(Opcode.ENROLL, b"x")
                assert accepted["count"] == 1  # no replay dials
                assert client.counters["retries"] == 0
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(main())
