"""Production-curve tests: every scheme on real BN254 (marked slow).

The rest of the suite runs on generated small BN curves for speed; these
tests pin the same behaviour on the 254-bit production curve, exercising
full-width field arithmetic, the hardcoded generators and the optimised
final exponentiation end to end.
"""

import random

import pytest

from repro.core.mccls import McCLS
from repro.pairing.bn import bn254
from repro.pairing.groups import PairingContext
from repro.schemes.registry import scheme_class, scheme_names

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def curve():
    return bn254()


@pytest.mark.parametrize("name", scheme_names())
def test_sign_verify_on_bn254(curve, name):
    ctx = PairingContext(curve, random.Random(0xB254))
    scheme = scheme_class(name)(ctx)
    keys = scheme.generate_user_keys("prod@manet")
    sig = scheme.sign(b"production-curve message", keys)
    assert scheme.verify(
        b"production-curve message",
        sig,
        keys.identity,
        keys.public_key,
        keys.public_key_extra,
    )
    assert not scheme.verify(
        b"tampered", sig, keys.identity, keys.public_key, keys.public_key_extra
    )


def test_universal_forgery_on_bn254(curve):
    """The algebraic break is parameter-independent: it works on the
    production curve exactly as on the toy curves."""
    from repro.core.games import UniversalForgeryAttack, run_game

    scheme = McCLS(PairingContext(curve, random.Random(1)))
    result = run_game(scheme, UniversalForgeryAttack(random.Random(2)), trials=1)
    assert result.forgery_rate == 1.0


def test_hardened_fix_on_bn254(curve):
    from repro.core.games import UniversalForgeryAttack, run_game
    from repro.core.hardened import McCLSPlus

    scheme = McCLSPlus(PairingContext(curve, random.Random(1)))
    keys = scheme.generate_user_keys("prod@manet")
    sig = scheme.sign(b"m", keys)
    assert scheme.verify(b"m", sig, keys.identity, keys.public_key)
    result = run_game(scheme, UniversalForgeryAttack(random.Random(2)), trials=1)
    assert result.forgery_rate == 0.0


def test_batch_verification_on_bn254(curve):
    from repro.core.batch import McCLSBatchVerifier

    scheme = McCLS(PairingContext(curve, random.Random(3)), precompute_s=True)
    keys = scheme.generate_user_keys("batch@manet")
    verifier = McCLSBatchVerifier(scheme)
    items = verifier.sign_batch([b"a", b"b", b"c"], keys)
    assert verifier.verify_same_signer(items, keys.identity, keys.public_key)
    poisoned = list(items)
    poisoned[1] = (b"FORGED", poisoned[1][1])
    assert not verifier.verify_same_signer(
        poisoned, keys.identity, keys.public_key
    )
