"""KGC role and public-parameter tests."""

import pytest

from repro.core import KeyGenerationCenter, McCLS
from repro.pairing.bn import toy_curve
from repro.schemes import YHGScheme

CURVE = toy_curve(32)


class TestKGC:
    def test_enroll_and_verify(self):
        kgc = KeyGenerationCenter(McCLS, curve=CURVE, seed=1)
        keys = kgc.enroll("alice")
        sig = kgc.scheme.sign(b"m", keys)
        assert kgc.scheme.verify(b"m", sig, keys.identity, keys.public_key)

    def test_issued_directory(self):
        kgc = KeyGenerationCenter(McCLS, curve=CURVE, seed=1)
        kgc.enroll("bravo")
        kgc.enroll("alpha")
        assert kgc.issued_identities() == ["alpha", "bravo"]
        assert kgc.keys_for("alpha").identity == "alpha"

    def test_unknown_identity_raises(self):
        kgc = KeyGenerationCenter(McCLS, curve=CURVE, seed=1)
        with pytest.raises(KeyError):
            kgc.keys_for("ghost")

    def test_public_params_fields(self):
        kgc = KeyGenerationCenter(McCLS, curve=CURVE, seed=1)
        params = kgc.public_params()
        assert params.scheme_name == "mccls"
        assert params.curve_name == CURVE.name
        assert params.order == CURVE.n
        assert params.p_pub_g1 == CURVE.g1 * kgc.scheme.master_secret
        assert params.p_pub_g2 == CURVE.g2 * kgc.scheme.master_secret

    def test_deterministic_with_seed_and_master(self):
        a = KeyGenerationCenter(McCLS, curve=CURVE, seed=9, master_secret=777)
        b = KeyGenerationCenter(McCLS, curve=CURVE, seed=9, master_secret=777)
        assert a.public_params() == b.public_params()

    def test_works_with_other_schemes(self):
        kgc = KeyGenerationCenter(YHGScheme, curve=CURVE, seed=1)
        keys = kgc.enroll("alice")
        sig = kgc.scheme.sign(b"m", keys)
        assert kgc.scheme.verify(b"m", sig, keys.identity, keys.public_key)
        assert kgc.public_params().scheme_name == "yhg"

    def test_default_curve(self):
        kgc = KeyGenerationCenter(McCLS, seed=1)
        assert kgc.ctx.curve.name == "bn-toy64"
