"""Packet-format tests: sizes, immutability, per-hop mutation."""

import dataclasses

import pytest

from repro.netsim.packets import (
    AuthTag,
    BROADCAST,
    DATA_HEADER_BYTES,
    DataPacket,
    Frame,
    LINK_OVERHEAD_BYTES,
    RERR_BASE_BYTES,
    RERR_PER_DEST_BYTES,
    RREP_BYTES,
    RREQ_BYTES,
    RouteError,
    RouteReply,
    RouteRequest,
)


def rreq(**overrides):
    defaults = dict(
        rreq_id=1,
        originator=0,
        originator_seq=5,
        destination=7,
        destination_seq=0,
        hop_count=0,
        ttl=5,
        originated_at=0.0,
    )
    defaults.update(overrides)
    return RouteRequest(**defaults)


def rrep(**overrides):
    defaults = dict(
        originator=0,
        destination=7,
        destination_seq=9,
        hop_count=0,
        lifetime=6.0,
        responder=7,
    )
    defaults.update(overrides)
    return RouteReply(**defaults)


class TestSizes:
    def test_rreq_base_size(self):
        assert rreq().size_bytes == RREQ_BYTES

    def test_rreq_with_auth(self):
        tag = AuthTag(signer="node-0", size_bytes=226)
        assert rreq(auth=tag).size_bytes == RREQ_BYTES + 226

    def test_rreq_with_both_tags(self):
        tag = AuthTag(signer="node-0", size_bytes=226)
        packet = rreq(auth=tag, hop_auth=tag)
        assert packet.size_bytes == RREQ_BYTES + 452

    def test_rrep_sizes(self):
        tag = AuthTag(signer="node-7", size_bytes=100)
        assert rrep().size_bytes == RREP_BYTES
        assert rrep(auth=tag, hop_auth=tag).size_bytes == RREP_BYTES + 200

    def test_rerr_size_scales_with_destinations(self):
        one = RouteError(unreachable=((1, 2),))
        three = RouteError(unreachable=((1, 2), (3, 4), (5, 6)))
        assert one.size_bytes == RERR_BASE_BYTES + RERR_PER_DEST_BYTES
        assert three.size_bytes == RERR_BASE_BYTES + 3 * RERR_PER_DEST_BYTES

    def test_data_size(self):
        packet = DataPacket(0, 0, 1, 2, 512, 0.0)
        assert packet.size_bytes == DATA_HEADER_BYTES + 512

    def test_frame_adds_link_overhead(self):
        packet = DataPacket(0, 0, 1, 2, 512, 0.0)
        frame = Frame(sender=1, link_destination=2, payload=packet)
        assert frame.size_bytes == LINK_OVERHEAD_BYTES + packet.size_bytes


class TestHopMutation:
    def test_rreq_hop_forward(self):
        original = rreq(hop_count=2, ttl=5)
        forwarded = original.hop_forward()
        assert forwarded.hop_count == 3
        assert forwarded.ttl == 4
        # The original is untouched (no aliasing between nodes).
        assert original.hop_count == 2

    def test_rrep_hop_forward(self):
        original = rrep(hop_count=1)
        assert original.hop_forward().hop_count == 2
        assert original.hop_count == 1

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            rreq().hop_count = 99


class TestSignedFields:
    def test_rreq_signed_fields_exclude_mutables(self):
        a = rreq(hop_count=0, ttl=5)
        b = a.hop_forward()
        assert a.signed_fields() == b.signed_fields()

    def test_rreq_signed_fields_cover_identity_claims(self):
        assert rreq(originator=1).signed_fields() != rreq(originator=2).signed_fields()
        assert rreq(rreq_id=1).signed_fields() != rreq(rreq_id=2).signed_fields()
        assert (
            rreq(destination=1).signed_fields()
            != rreq(destination=2).signed_fields()
        )

    def test_rrep_signed_fields_cover_seq(self):
        assert (
            rrep(destination_seq=1).signed_fields()
            != rrep(destination_seq=2).signed_fields()
        )
        assert rrep(responder=1).signed_fields() != rrep(responder=2).signed_fields()

    def test_rrep_signed_fields_exclude_hops(self):
        assert rrep(hop_count=0).signed_fields() == rrep(hop_count=3).signed_fields()


class TestFrame:
    def test_broadcast_flag(self):
        packet = DataPacket(0, 0, 1, 2, 10, 0.0)
        assert Frame(1, BROADCAST, packet).is_broadcast
        assert not Frame(1, 2, packet).is_broadcast

    def test_auth_tag_signature_excluded_from_equality(self):
        a = AuthTag(signer="x", size_bytes=10, signature=object())
        b = AuthTag(signer="x", size_bytes=10, signature=object())
        assert a == b  # signature object is compare=False (wire equality)
        assert a != AuthTag(signer="y", size_bytes=10)
