"""Radio-medium tests: range, addressing, queueing, jitter, loss."""

import pytest

from repro.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import BROADCAST, DataPacket, Frame
from repro.netsim.radio import RadioMedium


def data_frame(sender, link_dst, payload_bytes=100):
    return Frame(
        sender=sender,
        link_destination=link_dst,
        payload=DataPacket(
            flow_id=0,
            seq=0,
            source=sender,
            destination=link_dst if link_dst != BROADCAST else 0,
            payload_bytes=payload_bytes,
            created_at=0.0,
        ),
    )


class Harness:
    def __init__(self, positions, **radio_kwargs):
        self.sim = Simulator(seed=5)
        radio_kwargs.setdefault("broadcast_jitter_s", 0.0)
        self.radio = RadioMedium(self.sim, **radio_kwargs)
        self.received = []
        for node_id, pos in positions.items():
            self.radio.attach(
                node_id,
                StaticPosition(pos),
                lambda nid, frame, now: self.received.append((nid, frame, now)),
            )


class TestRangeAndDelivery:
    def test_in_range_delivery(self):
        h = Harness({0: (0, 0), 1: (100, 0)}, range_m=250.0)
        h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert [r[0] for r in h.received] == [1]

    def test_out_of_range_not_delivered(self):
        h = Harness({0: (0, 0), 1: (300, 0)}, range_m=250.0)
        h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert h.received == []

    def test_broadcast_reaches_all_neighbors(self):
        h = Harness({0: (0, 0), 1: (50, 0), 2: (0, 50), 3: (400, 0)})
        h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert sorted(r[0] for r in h.received) == [1, 2]

    def test_sender_does_not_hear_itself(self):
        h = Harness({0: (0, 0)})
        h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert h.received == []

    def test_unicast_physically_broadcast(self):
        """Unicast frames still reach every radio in range (link-layer
        filtering is the node's job, exercised in node tests)."""
        h = Harness({0: (0, 0), 1: (50, 0), 2: (60, 0)})
        h.radio.transmit(data_frame(0, 1))
        h.sim.run()
        assert sorted(r[0] for r in h.received) == [1, 2]

    def test_in_range_helper(self):
        h = Harness({0: (0, 0), 1: (100, 0), 2: (9999, 0)})
        assert h.radio.in_range(0, 1)
        assert not h.radio.in_range(0, 2)

    def test_neighbors_of(self):
        h = Harness({0: (0, 0), 1: (100, 0), 2: (9999, 0)})
        assert h.radio.neighbors_of(0) == [1]


class TestTiming:
    def test_transmission_delay_proportional_to_size(self):
        h = Harness({0: (0, 0), 1: (10, 0)}, bitrate_bps=1_000_000.0)
        frame = data_frame(0, BROADCAST, payload_bytes=1000)
        h.radio.transmit(frame)
        h.sim.run()
        (_, _, arrival) = h.received[0]
        expected = frame.size_bytes * 8 / 1_000_000.0
        assert arrival == pytest.approx(expected, rel=1e-3)

    def test_back_to_back_transmissions_serialise(self):
        h = Harness({0: (0, 0), 1: (10, 0)}, bitrate_bps=1_000_000.0)
        h.radio.transmit(data_frame(0, BROADCAST, payload_bytes=1000))
        h.radio.transmit(data_frame(0, BROADCAST, payload_bytes=1000))
        h.sim.run()
        assert len(h.received) == 2
        first, second = h.received[0][2], h.received[1][2]
        assert second >= 2 * first * 0.99

    def test_jitter_applied_to_broadcast(self):
        h = Harness({0: (0, 0), 1: (10, 0)}, broadcast_jitter_s=0.01)
        h.radio.transmit(data_frame(0, BROADCAST, payload_bytes=0))
        h.sim.run()
        arrival = h.received[0][2]
        tx = data_frame(0, BROADCAST, payload_bytes=0).size_bytes * 8 / 2e6
        assert arrival > tx  # some jitter was added

    def test_jitter_bypass(self):
        h = Harness({0: (0, 0), 1: (10, 0)}, broadcast_jitter_s=0.01)
        h.radio.transmit(data_frame(0, BROADCAST, payload_bytes=0), jitter=False)
        h.sim.run()
        arrival = h.received[0][2]
        tx = data_frame(0, BROADCAST, payload_bytes=0).size_bytes * 8 / 2e6
        assert arrival == pytest.approx(tx, rel=1e-2)


class TestLoss:
    def test_zero_loss_delivers_everything(self):
        h = Harness({0: (0, 0), 1: (10, 0)}, loss_rate=0.0)
        for _ in range(20):
            h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert len(h.received) == 20

    def test_heavy_loss_drops_most(self):
        h = Harness({0: (0, 0), 1: (10, 0)}, loss_rate=0.9)
        for _ in range(100):
            h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert len(h.received) < 40
        assert h.radio.frames_lost > 50

    def test_total_jamming_delivers_nothing(self):
        """loss_rate=1.0 is a legal, total-jamming medium: PDR is zero."""
        h = Harness({0: (0, 0), 1: (10, 0)}, loss_rate=1.0)
        for _ in range(50):
            h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert h.received == []
        assert h.radio.frames_lost == 50

    def test_invalid_loss_rate(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            RadioMedium(sim, loss_rate=1.5)
        with pytest.raises(SimulationError):
            RadioMedium(sim, loss_rate=-0.1)

    def test_set_conditions(self):
        h = Harness({0: (0, 0), 1: (10, 0)})
        h.radio.set_conditions(loss_rate=0.5, range_m=42.0)
        assert h.radio.loss_rate == 0.5
        assert h.radio.range_m == 42.0
        with pytest.raises(SimulationError):
            h.radio.set_conditions(loss_rate=2.0)
        with pytest.raises(SimulationError):
            h.radio.set_conditions(range_m=-1.0)

    def test_frame_filter_can_drop_and_substitute(self):
        h = Harness({0: (0, 0), 1: (10, 0), 2: (20, 0)})
        replacement = data_frame(0, BROADCAST, payload_bytes=7)
        h.radio.frame_filter = (
            lambda nid, frame: None if nid == 1 else replacement
        )
        h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert [(r[0], r[1]) for r in h.received] == [(2, replacement)]
        assert h.radio.frames_lost == 1


class TestAttachment:
    def test_double_attach_rejected(self):
        h = Harness({0: (0, 0)})
        with pytest.raises(SimulationError):
            h.radio.attach(0, StaticPosition((1, 1)), lambda *a: None)

    def test_detach(self):
        h = Harness({0: (0, 0), 1: (10, 0)})
        h.radio.detach(1)
        h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert h.received == []

    def test_unattached_sender_rejected(self):
        h = Harness({0: (0, 0)})
        with pytest.raises(SimulationError):
            h.radio.transmit(data_frame(42, BROADCAST))

    def test_counters(self):
        h = Harness({0: (0, 0), 1: (10, 0)})
        h.radio.transmit(data_frame(0, BROADCAST))
        h.sim.run()
        assert h.radio.frames_sent == 1
        assert h.radio.frames_delivered == 1
