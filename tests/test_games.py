"""Security-game harness tests (Type I / Type II experiments).

These tests pin down BOTH sides of the reproduction's security story:

* protocol-level adversaries (what MANET attacker nodes can do) forge with
  probability 0 - this is what makes the simulation's Figure 4/5 results
  meaningful; and
* the algebraic adversaries succeed with probability 1 - the published
  scheme does not satisfy its Theorems 1 and 2 (see EXPERIMENTS.md).
"""

import random

import pytest

from repro.core.games import (
    ALGEBRAIC_ADVERSARIES,
    PAKNIAT_ADVERSARIES,
    PROTOCOL_ADVERSARIES,
    Challenger,
    KeyReplacementAdversary,
    MaliciousKGCForger,
    MaliciousKGCPartialKeyForger,
    PublicKeyReplacementForger,
    RandomForgeryAdversary,
    TamperAdversary,
    TransplantAdversary,
    UniversalForgeryAttack,
    run_game,
)
from repro.core.mccls import McCLS
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.schemes import ZWXFScheme

CURVE = toy_curve(32)


def make_scheme(cls=McCLS, seed=0x600D):
    return cls(PairingContext(CURVE, random.Random(seed)))


class TestChallenger:
    def test_target_partial_key_forbidden(self):
        challenger = Challenger(make_scheme(), "target")
        with pytest.raises(PermissionError):
            challenger.extract_partial_key("target")

    def test_other_partial_keys_allowed(self):
        challenger = Challenger(make_scheme(), "target")
        partial = challenger.extract_partial_key("other")
        assert partial.identity == "other"

    def test_replay_is_not_a_forgery(self):
        from repro.core.games import ForgeryAttempt

        scheme = make_scheme()
        challenger = Challenger(scheme, "target")
        sig = challenger.sign_oracle("target", b"msg")
        attempt = ForgeryAttempt(
            message=b"msg",
            signature=sig,
            identity="target",
            public_key=challenger.public_key_oracle("target"),
        )
        assert not challenger.judge(attempt)

    def test_fresh_valid_signature_judged_as_forgery(self):
        """Sanity: the judge accepts a genuinely valid fresh signature (as
        produced here with full knowledge of the keys)."""
        from repro.core.games import ForgeryAttempt

        scheme = make_scheme()
        challenger = Challenger(scheme, "target")
        keys = challenger.keys["target"]
        sig = scheme.sign(b"fresh message", keys)
        attempt = ForgeryAttempt(
            message=b"fresh message",
            signature=sig,
            identity="target",
            public_key=keys.public_key,
        )
        assert challenger.judge(attempt)

    def test_wrong_identity_not_judged(self):
        from repro.core.games import ForgeryAttempt

        scheme = make_scheme()
        challenger = Challenger(scheme, "target")
        keys = challenger.keys["target"]
        attempt = ForgeryAttempt(
            message=b"m",
            signature=scheme.sign(b"m", keys),
            identity="not-the-target",
            public_key=keys.public_key,
        )
        assert not challenger.judge(attempt)

    def test_public_key_replacement_visible(self):
        challenger = Challenger(make_scheme(), "target")
        new_key = CURVE.g1 * 424242
        challenger.replace_public_key("target", new_key)
        assert challenger.public_key_oracle("target") == new_key


@pytest.mark.parametrize("adversary_cls", PROTOCOL_ADVERSARIES)
def test_protocol_adversaries_fail(adversary_cls):
    result = run_game(
        make_scheme(), adversary_cls(random.Random(1)), trials=3
    )
    assert result.forgeries == 0, adversary_cls.name


@pytest.mark.parametrize("adversary_cls", ALGEBRAIC_ADVERSARIES)
def test_algebraic_adversaries_succeed(adversary_cls):
    result = run_game(
        make_scheme(), adversary_cls(random.Random(1)), trials=3
    )
    assert result.forgeries == result.trials, adversary_cls.name
    assert result.forgery_rate == 1.0


class TestAgainstZWXF:
    """The same strategies against a scheme with a real security proof."""

    @pytest.mark.parametrize(
        "adversary_cls",
        [
            RandomForgeryAdversary,
            TamperAdversary,
            TransplantAdversary,
            KeyReplacementAdversary,
            UniversalForgeryAttack,
            MaliciousKGCForger,
        ],
    )
    def test_no_strategy_succeeds(self, adversary_cls):
        # McCLS-specific algebraic attacks return None (concede) for other
        # schemes; the generic ones produce invalid signatures.
        result = run_game(
            make_scheme(ZWXFScheme), adversary_cls(random.Random(2)), trials=2
        )
        assert result.forgeries == 0


class TestGameResult:
    def test_rate(self):
        from repro.core.games import GameResult

        assert GameResult(trials=0, forgeries=0).forgery_rate == 0.0
        assert GameResult(trials=4, forgeries=1).forgery_rate == 0.25


class TestPakniatGames:
    """Pakniat's pairing-free CLS attacks (arXiv:1909.10816).

    Each attack must have teeth - forge with probability 1 against the
    ECLS variant that reproduces the design bug it exploits - and must
    fail against hardened ECLS, against the *other* weakened variant,
    and (by concession) against the pairing-based schemes.
    """

    def test_type_i_breaks_unbound_hash_variant(self):
        from repro.schemes.ecls import WeakECLSUnboundKey

        result = run_game(
            make_scheme(WeakECLSUnboundKey),
            PublicKeyReplacementForger(random.Random(3)),
            trials=4,
        )
        assert result.forgery_rate == 1.0

    def test_type_ii_breaks_no_user_secret_variant(self):
        from repro.schemes.ecls import WeakECLSNoUserSecret

        result = run_game(
            make_scheme(WeakECLSNoUserSecret),
            MaliciousKGCPartialKeyForger(random.Random(4)),
            trials=4,
        )
        assert result.forgery_rate == 1.0

    @pytest.mark.parametrize("adversary_cls", PAKNIAT_ADVERSARIES)
    def test_hardened_ecls_resists(self, adversary_cls):
        from repro.schemes.ecls import ECLSScheme

        result = run_game(
            make_scheme(ECLSScheme), adversary_cls(random.Random(5)), trials=4
        )
        assert result.forgeries == 0, adversary_cls.name

    def test_attacks_do_not_cross_over(self):
        # each weakened variant resists the attack aimed at the OTHER bug
        from repro.schemes.ecls import WeakECLSNoUserSecret, WeakECLSUnboundKey

        crossed = [
            (WeakECLSUnboundKey, MaliciousKGCPartialKeyForger),
            (WeakECLSNoUserSecret, PublicKeyReplacementForger),
        ]
        for scheme_cls, adversary_cls in crossed:
            result = run_game(
                make_scheme(scheme_cls),
                adversary_cls(random.Random(6)),
                trials=3,
            )
            assert result.forgeries == 0, (scheme_cls.name, adversary_cls.name)

    @pytest.mark.parametrize("adversary_cls", PAKNIAT_ADVERSARIES)
    def test_pairing_schemes_out_of_scope(self, adversary_cls):
        # the attack shape needs the Schnorr equation: concede vs McCLS
        result = run_game(
            make_scheme(), adversary_cls(random.Random(7)), trials=2
        )
        assert result.forgeries == 0

    def test_protocol_adversaries_fail_against_ecls(self):
        from repro.schemes.ecls import ECLSScheme

        for adversary_cls in PROTOCOL_ADVERSARIES:
            result = run_game(
                make_scheme(ECLSScheme),
                adversary_cls(random.Random(8)),
                trials=2,
            )
            assert result.forgeries == 0, adversary_cls.name
