"""Protocol invariants checked via packet traces (property-style tests)."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import StaticPosition
from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.trace import PacketTracer


def grid_net(rows=3, cols=4, spacing=100.0, seed=7):
    """A rows x cols grid: richly connected, many alternative paths."""
    sim = Simulator(seed=seed)
    metrics = MetricsCollector()
    radio = RadioMedium(sim, range_m=150.0, broadcast_jitter_s=0.002)
    tracer = PacketTracer(radio)
    nodes = {}
    node_id = 0
    for r in range(rows):
        for c in range(cols):
            nodes[node_id] = AODVNode(
                node_id,
                sim,
                radio,
                StaticPosition((c * spacing, r * spacing)),
                metrics,
            )
            node_id += 1
    return sim, metrics, nodes, tracer


class TestLoopFreedom:
    def test_data_paths_are_loop_free(self):
        """No delivered data packet visits the same forwarder twice."""
        sim, metrics, nodes, tracer = grid_net()
        corner_a, corner_b = 0, len(nodes) - 1
        for seq in range(8):
            nodes[corner_a].send_data(
                DataPacket(0, seq, corner_a, corner_b, 64, sim.now)
            )
        sim.run(until=10.0)
        assert metrics.data_received == 8
        # Group DATA transmissions by packet identity and check that each
        # packet's forwarding path never repeats a node.
        paths = {}
        for record in tracer.filter(kind="DATA"):
            key = (record.payload.flow_id, record.payload.seq)
            paths.setdefault(key, []).append(record.sender)
        assert len(paths) == 8
        for key, senders in paths.items():
            assert len(senders) == len(set(senders)), (key, senders)

    def test_rreq_flood_terminates(self):
        """Every node forwards a given flood at most once (dedup)."""
        sim, metrics, nodes, tracer = grid_net()
        nodes[0].send_data(DataPacket(0, 0, 0, len(nodes) - 1, 64, sim.now))
        sim.run(until=5.0)
        rreq_senders = [r.sender for r in tracer.filter(kind="RREQ")]
        for sender in set(rreq_senders):
            # originator may retry (new rreq_id); forwarders send each
            # flood once; with one discovery this means <= retries + 1.
            assert rreq_senders.count(sender) <= 3

    def test_rerr_storms_bounded(self):
        sim, metrics, nodes, tracer = grid_net()
        nodes[0].send_data(DataPacket(0, 0, 0, len(nodes) - 1, 64, sim.now))
        sim.run(until=3.0)
        # Kill a middle node and keep sending.
        victim = len(nodes) // 2
        sim_now = sim.now
        nodes[victim].radio.detach(victim)
        for seq in range(5):
            nodes[0].send_data(
                DataPacket(0, 1 + seq, 0, len(nodes) - 1, 64, sim.now)
            )
        sim.run(until=sim_now + 10.0)
        rerrs = tracer.filter(kind="RERR")
        assert len(rerrs) < 40  # bounded, no broadcast storm


class TestSequenceMonotonicity:
    def test_node_sequence_numbers_never_decrease(self):
        sim, metrics, nodes, tracer = grid_net()
        observed = {nid: [] for nid in nodes}

        def sample():
            for nid, node in nodes.items():
                observed[nid].append(node.seq_no)
            sim.schedule(0.5, sample)

        sim.schedule(0.0, sample)
        for seq in range(4):
            nodes[0].send_data(DataPacket(0, seq, 0, 11, 64, sim.now))
            nodes[5].send_data(DataPacket(1, seq, 5, 2, 64, sim.now))
        sim.run(until=8.0)
        for nid, series in observed.items():
            assert series == sorted(series), f"node {nid} seq went backwards"
